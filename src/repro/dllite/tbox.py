"""TBoxes: axiom sets with saturation and inclusion entailment.

Besides storing axioms, a :class:`TBox` exposes the two views the rest of
the system needs:

* **PerfectRef view** — positive inclusions indexed by their right-hand
  side, to drive backward application (``inclusions_into_concept``,
  ``inclusions_into_role``);
* **entailment view** — the saturated (transitively closed) sets of basic
  concept and signed role inclusions, including the interaction
  ``R1 <= R2  entails  exists R1 <= exists R2`` and
  ``exists R1- <= exists R2-``, used for inclusion entailment
  (paper Example 2) and consistency checking.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.dllite.axioms import Axiom, ConceptInclusion, RoleInclusion
from repro.dllite.vocabulary import (
    AtomicConcept,
    BasicConcept,
    Exists,
    Role,
    predicate_name,
)


class TBox:
    """An immutable collection of DL-LiteR axioms with derived indexes."""

    def __init__(self, axioms: Iterable[Axiom] = ()) -> None:
        unique: List[Axiom] = []
        seen: Set[Axiom] = set()
        for axiom in axioms:
            if axiom not in seen:
                seen.add(axiom)
                unique.append(axiom)
        self._axioms: Tuple[Axiom, ...] = tuple(unique)
        self._saturated_concepts: Optional[Dict[BasicConcept, Set[BasicConcept]]] = None
        self._saturated_roles: Optional[Dict[Role, Set[Role]]] = None
        self._rhs_concept_index: Dict[BasicConcept, List[ConceptInclusion]] = {}
        self._rhs_role_index: Dict[str, List[RoleInclusion]] = {}
        for axiom in self._axioms:
            if isinstance(axiom, ConceptInclusion) and not axiom.negative:
                self._rhs_concept_index.setdefault(axiom.rhs, []).append(axiom)
            elif isinstance(axiom, RoleInclusion) and not axiom.negative:
                self._rhs_role_index.setdefault(axiom.rhs.name, []).append(axiom)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def axioms(self) -> Tuple[Axiom, ...]:
        """All axioms, declaration order, duplicates removed."""
        return self._axioms

    def __len__(self) -> int:
        return len(self._axioms)

    def __iter__(self) -> Iterator[Axiom]:
        return iter(self._axioms)

    def positive_axioms(self) -> List[Axiom]:
        """Axioms without right-hand-side negation."""
        return [a for a in self._axioms if not a.negative]

    def negative_axioms(self) -> List[Axiom]:
        """Disjointness axioms (negated right-hand side)."""
        return [a for a in self._axioms if a.negative]

    def concept_names(self) -> FrozenSet[str]:
        """All concept names mentioned by any axiom."""
        names: Set[str] = set()
        for axiom in self._axioms:
            for side in (axiom.lhs, axiom.rhs):
                if isinstance(side, AtomicConcept):
                    names.add(side.name)
        return frozenset(names)

    def role_names(self) -> FrozenSet[str]:
        """All role names mentioned by any axiom."""
        names: Set[str] = set()
        for axiom in self._axioms:
            for side in (axiom.lhs, axiom.rhs):
                if isinstance(side, Role):
                    names.add(side.name)
                elif isinstance(side, Exists):
                    names.add(side.role.name)
        return frozenset(names)

    def predicate_names(self) -> FrozenSet[str]:
        """Union of concept and role names."""
        return self.concept_names() | self.role_names()

    # ------------------------------------------------------------------
    # PerfectRef view
    # ------------------------------------------------------------------
    def inclusions_into_concept(self, target: BasicConcept) -> List[ConceptInclusion]:
        """Positive concept inclusions whose right-hand side is *target*."""
        return list(self._rhs_concept_index.get(target, ()))

    def inclusions_into_role(self, role_name: str) -> List[RoleInclusion]:
        """Positive role inclusions whose right-hand side uses *role_name*."""
        return list(self._rhs_role_index.get(role_name, ()))

    # ------------------------------------------------------------------
    # Saturation
    # ------------------------------------------------------------------
    def _saturate(self) -> None:
        if self._saturated_concepts is not None:
            return
        role_closure: Dict[Role, Set[Role]] = {}

        def add_role_edge(sub: Role, sup: Role) -> None:
            role_closure.setdefault(sub, set()).add(sup)

        for axiom in self._axioms:
            if isinstance(axiom, RoleInclusion) and not axiom.negative:
                add_role_edge(axiom.lhs, axiom.rhs)
                add_role_edge(axiom.lhs.inverted(), axiom.rhs.inverted())

        _transitive_closure(role_closure)

        concept_closure: Dict[BasicConcept, Set[BasicConcept]] = {}

        def add_concept_edge(sub: BasicConcept, sup: BasicConcept) -> None:
            concept_closure.setdefault(sub, set()).add(sup)

        for axiom in self._axioms:
            if isinstance(axiom, ConceptInclusion) and not axiom.negative:
                add_concept_edge(axiom.lhs, axiom.rhs)
        for sub, supers in role_closure.items():
            for sup in supers:
                add_concept_edge(Exists(sub), Exists(sup))
                add_concept_edge(Exists(sub.inverted()), Exists(sup.inverted()))

        _transitive_closure(concept_closure)

        self._saturated_roles = role_closure
        self._saturated_concepts = concept_closure

    def super_concepts(self, basic: BasicConcept) -> Set[BasicConcept]:
        """All basic concepts entailed to include *basic* (reflexive)."""
        self._saturate()
        assert self._saturated_concepts is not None
        result = set(self._saturated_concepts.get(basic, ()))
        result.add(basic)
        return result

    def super_roles(self, signed: Role) -> Set[Role]:
        """All signed roles entailed to include *signed* (reflexive)."""
        self._saturate()
        assert self._saturated_roles is not None
        result = set(self._saturated_roles.get(signed, ()))
        result.add(signed)
        return result

    # ------------------------------------------------------------------
    # Entailment
    # ------------------------------------------------------------------
    def entails_concept_inclusion(
        self, lhs: BasicConcept, rhs: BasicConcept, negative: bool = False
    ) -> bool:
        """Decide ``T |= lhs <= rhs`` (or ``lhs <= not rhs``)."""
        if not negative:
            return rhs in self.super_concepts(lhs)
        lhs_supers = self.super_concepts(lhs)
        rhs_supers = self.super_concepts(rhs)
        for declared in self.negative_axioms():
            forbidden = _concept_disjointness(declared)
            if forbidden is None:
                continue
            first, second = forbidden
            if (first in lhs_supers and second in rhs_supers) or (
                first in rhs_supers and second in lhs_supers
            ):
                return True
        return False

    def entails_role_inclusion(
        self, lhs: Role, rhs: Role, negative: bool = False
    ) -> bool:
        """Decide ``T |= lhs <= rhs`` (or ``lhs <= not rhs``) over roles."""
        if not negative:
            return rhs in self.super_roles(lhs)
        lhs_supers = self.super_roles(lhs)
        rhs_supers = self.super_roles(rhs)
        for declared in self.negative_axioms():
            if not isinstance(declared, RoleInclusion):
                continue
            pairs = [
                (declared.lhs, declared.rhs),
                (declared.lhs.inverted(), declared.rhs.inverted()),
            ]
            for first, second in pairs:
                if (first in lhs_supers and second in rhs_supers) or (
                    first in rhs_supers and second in lhs_supers
                ):
                    return True
        return False

    def entails(self, axiom: Axiom) -> bool:
        """Decide ``T |= axiom`` for any axiom kind."""
        if isinstance(axiom, ConceptInclusion):
            return self.entails_concept_inclusion(axiom.lhs, axiom.rhs, axiom.negative)
        if isinstance(axiom, RoleInclusion):
            return self.entails_role_inclusion(axiom.lhs, axiom.rhs, axiom.negative)
        raise TypeError(f"not an axiom: {axiom!r}")

    def extended_with(self, axioms: Iterable[Axiom]) -> "TBox":
        """A new TBox with *axioms* appended."""
        return TBox(list(self._axioms) + list(axioms))

    def statistics(self) -> Dict[str, int]:
        """Signature and axiom-shape counts (used by the benchmark reports)."""
        counts = {
            "concepts": len(self.concept_names()),
            "roles": len(self.role_names()),
            "axioms": len(self._axioms),
            "concept_inclusions": 0,
            "role_inclusions": 0,
            "existential_rhs": 0,
            "negative": 0,
        }
        for axiom in self._axioms:
            if axiom.negative:
                counts["negative"] += 1
            if isinstance(axiom, ConceptInclusion):
                counts["concept_inclusions"] += 1
                if isinstance(axiom.rhs, Exists) and not axiom.negative:
                    counts["existential_rhs"] += 1
            else:
                counts["role_inclusions"] += 1
        return counts

    def __str__(self) -> str:
        return "\n".join(str(a) for a in self._axioms)


def _transitive_closure(graph: Dict) -> None:
    """In-place transitive closure of an adjacency-set graph."""
    changed = True
    while changed:
        changed = False
        for node, successors in list(graph.items()):
            additions = set()
            for successor in successors:
                additions |= graph.get(successor, set())
            new = additions - successors
            if new:
                successors |= new
                changed = True


def _concept_disjointness(axiom: Axiom) -> Optional[Tuple[BasicConcept, BasicConcept]]:
    """The pair of disjoint basic concepts an axiom declares, if any.

    Negative role inclusions ``R1 <= not R2`` also induce the concept-level
    disjointness of their domains only when combined with further reasoning;
    for the purposes of concept-level disjointness we return None for them
    (they are checked at the role level by the consistency query).
    """
    if isinstance(axiom, ConceptInclusion) and axiom.negative:
        return (axiom.lhs, axiom.rhs)
    return None
