"""The DL-LiteR vocabulary: concepts, roles, inverses and existentials.

Following Section 2.1 of the paper:

* ``NC`` — concept names (unary predicates), here :class:`AtomicConcept`;
* ``NR`` — role names (binary predicates); a :class:`Role` carries an
  ``inverse`` flag, so ``N±R = NR ∪ {r- | r ∈ NR}`` is the set of all
  :class:`Role` values;
* a *basic concept* is a concept name or an unqualified existential
  ``exists R`` for ``R ∈ N±R`` (the projection of ``R`` on its first
  attribute), here :class:`Exists`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class AtomicConcept:
    """A concept name ``A`` from NC."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Role:
    """A role name from NR, or its inverse when ``inverse`` is set.

    ``Role("supervisedBy").inverted()`` denotes ``supervisedBy-`` whose
    extension is ``{(b, a) | supervisedBy(a, b)}``.
    """

    name: str
    inverse: bool = False

    def inverted(self) -> "Role":
        """The inverse role (involution: inverting twice is the identity)."""
        return Role(self.name, not self.inverse)

    def __str__(self) -> str:
        return f"{self.name}-" if self.inverse else self.name


@dataclass(frozen=True, order=True)
class Exists:
    """The basic concept ``exists R``: constants in the first position of R."""

    role: Role

    def __str__(self) -> str:
        return f"exists {self.role}"


BasicConcept = Union[AtomicConcept, Exists]


def concept(name: str) -> AtomicConcept:
    """Shorthand constructor for a concept name."""
    return AtomicConcept(name)


def role(name: str) -> Role:
    """Shorthand constructor for a (direct) role."""
    return Role(name)


def inverse(role_name: str) -> Role:
    """Shorthand constructor for an inverse role ``role_name-``."""
    return Role(role_name, inverse=True)


def exists(of: Union[Role, str]) -> Exists:
    """Shorthand for ``exists R``; accepts a role or a role name."""
    if isinstance(of, str):
        of = Role(of)
    return Exists(of)


def predicate_name(expression: Union[BasicConcept, Role]) -> str:
    """The concept or role *name* underlying any vocabulary expression.

    This is the ``cr(Y)`` function of Definition 4 in the paper: it strips
    inverses and existentials, returning the bare predicate name.
    """
    if isinstance(expression, AtomicConcept):
        return expression.name
    if isinstance(expression, Exists):
        return expression.role.name
    if isinstance(expression, Role):
        return expression.name
    raise TypeError(f"not a vocabulary expression: {expression!r}")
