"""DL-LiteR TBox axioms and their first-order logic readings.

A DL-LiteR TBox constraint is either (Section 2.1 of the paper):

* a concept inclusion ``B1 <= B2`` or ``B1 <= not B2`` with ``B1``, ``B2``
  basic concepts (concept names or ``exists R`` for signed roles), or
* a role inclusion ``R1 <= R2`` or ``R1 <= not R2`` with signed roles.

Negation may only appear on the right-hand side; negative constraints
express disjointness and only affect KB *consistency*, never positive
reformulation. :func:`axiom_to_fol` renders the 11 positive forms exactly as
Table 3 of the paper, plus the negated variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.dllite.vocabulary import AtomicConcept, BasicConcept, Exists, Role


@dataclass(frozen=True, order=True)
class ConceptInclusion:
    """``lhs <= rhs`` (or ``lhs <= not rhs`` when ``negative``)."""

    lhs: BasicConcept
    rhs: BasicConcept
    negative: bool = False

    def __str__(self) -> str:
        rhs = f"not {self.rhs}" if self.negative else str(self.rhs)
        return f"{self.lhs} <= {rhs}"


@dataclass(frozen=True, order=True)
class RoleInclusion:
    """``lhs <= rhs`` (or ``lhs <= not rhs`` when ``negative``) over roles."""

    lhs: Role
    rhs: Role
    negative: bool = False

    def __str__(self) -> str:
        rhs = f"not {self.rhs}" if self.negative else str(self.rhs)
        return f"{self.lhs} <= {rhs}"


Axiom = Union[ConceptInclusion, RoleInclusion]


def concept_inclusion(
    lhs: BasicConcept, rhs: BasicConcept, negative: bool = False
) -> ConceptInclusion:
    """Build a concept inclusion axiom."""
    return ConceptInclusion(lhs, rhs, negative)


def role_inclusion(lhs: Role, rhs: Role, negative: bool = False) -> RoleInclusion:
    """Build a role inclusion axiom."""
    return RoleInclusion(lhs, rhs, negative)


def _concept_formula(expression: BasicConcept, var: str, helper: str) -> str:
    """FOL rendering of membership of ``var`` in a basic concept."""
    if isinstance(expression, AtomicConcept):
        return f"{expression.name}({var})"
    assert isinstance(expression, Exists)
    if expression.role.inverse:
        return f"exists {helper} {expression.role.name}({helper}, {var})"
    return f"exists {helper} {expression.role.name}({var}, {helper})"


def _role_args(signed: Role, x: str, y: str) -> str:
    """FOL rendering of a signed role atom over (x, y)."""
    if signed.inverse:
        return f"{signed.name}({y}, {x})"
    return f"{signed.name}({x}, {y})"


def axiom_to_fol(axiom: Axiom) -> str:
    """The first-order sentence equivalent to *axiom* (Table 3).

    Examples
    --------
    ``A <= A'``             -> ``forall x [A(x) => A'(x)]``
    ``A <= exists R``       -> ``forall x [A(x) => exists y R(x, y)]``
    ``exists R- <= A``      -> ``forall x [exists y R(y, x) => A(x)]``
    ``R <= R'-``            -> ``forall x, y [R(x, y) => R'(y, x)]``

    Negative axioms render with a negated consequent, e.g.
    ``A <= not B`` -> ``forall x [A(x) => not B(x)]``.
    """
    if isinstance(axiom, ConceptInclusion):
        antecedent = _concept_formula(axiom.lhs, "x", "y")
        consequent = _concept_formula(axiom.rhs, "x", "z")
        if axiom.negative:
            consequent = f"not {consequent}"
        return f"forall x [{antecedent} => {consequent}]"
    if isinstance(axiom, RoleInclusion):
        antecedent = _role_args(axiom.lhs, "x", "y")
        consequent = _role_args(axiom.rhs, "x", "y")
        if axiom.negative:
            consequent = f"not {consequent}"
        return f"forall x, y [{antecedent} => {consequent}]"
    raise TypeError(f"not an axiom: {axiom!r}")


def mentioned_predicates(axiom: Axiom) -> frozenset:
    """Concept/role *names* appearing in the axiom (for signature checks)."""
    from repro.dllite.vocabulary import predicate_name

    return frozenset({predicate_name(axiom.lhs), predicate_name(axiom.rhs)})
