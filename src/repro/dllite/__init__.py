"""DL-LiteR knowledge bases: TBoxes, ABoxes, consistency and entailment.

DL-LiteR (Calvanese et al. [13]) is the description logic underpinning the
W3C OWL2 QL profile. This package provides:

* the vocabulary — concept names, role names, inverses ``R-`` and
  unqualified existential restrictions ``exists R`` (:mod:`vocabulary`);
* the 22 TBox constraint forms (11 positive of Table 3 plus their
  negated-right-hand-side variants) with first-order renderings
  (:mod:`axioms`);
* TBoxes with positive/negative closure and inclusion entailment
  (:mod:`tbox`);
* ABoxes, knowledge bases, consistency checking and assertion entailment
  (:mod:`abox`, :mod:`kb`);
* a bounded restricted chase used as ground truth in tests
  (:mod:`saturation`);
* a compact text syntax for KBs and queries (:mod:`parser`).
"""

from repro.dllite.vocabulary import (
    AtomicConcept,
    BasicConcept,
    Exists,
    Role,
    concept,
    exists,
    inverse,
    role,
)
from repro.dllite.axioms import (
    Axiom,
    ConceptInclusion,
    RoleInclusion,
    axiom_to_fol,
    concept_inclusion,
    role_inclusion,
)
from repro.dllite.tbox import TBox
from repro.dllite.abox import ABox, ConceptAssertion, RoleAssertion
from repro.dllite.kb import KnowledgeBase, InconsistentKBError
from repro.dllite.saturation import (
    ChaseResult,
    ChaseTruncatedError,
    chase,
    certain_answers,
)
from repro.dllite.parser import parse_axiom, parse_query, parse_tbox, parse_abox

__all__ = [
    "ABox",
    "AtomicConcept",
    "Axiom",
    "BasicConcept",
    "ChaseResult",
    "ChaseTruncatedError",
    "ConceptAssertion",
    "ConceptInclusion",
    "Exists",
    "InconsistentKBError",
    "KnowledgeBase",
    "Role",
    "RoleAssertion",
    "RoleInclusion",
    "TBox",
    "axiom_to_fol",
    "certain_answers",
    "chase",
    "concept",
    "concept_inclusion",
    "exists",
    "inverse",
    "parse_abox",
    "parse_axiom",
    "parse_query",
    "parse_tbox",
    "role",
    "role_inclusion",
]
