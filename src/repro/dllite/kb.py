"""Knowledge bases ``K = <T, A>``: consistency and entailment.

Consistency follows the classical DL-LiteR recipe: a KB is inconsistent iff
some (declared) disjointness constraint is violated by the facts *together
with everything the positive constraints entail*. Each negative axiom is
compiled into a Boolean *violation query*, answered through FOL
reformulation against the ABox alone — the very machinery the paper
optimizes. Assertion entailment works the same way (Example 2).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple, Union

from repro.dllite.abox import ABox, Assertion, ConceptAssertion, RoleAssertion
from repro.dllite.axioms import Axiom, ConceptInclusion, RoleInclusion
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import AtomicConcept, BasicConcept, Exists, Role
from repro.queries.atoms import Atom, concept_atom, role_atom
from repro.queries.cq import CQ
from repro.queries.terms import Constant, Term, Variable, fresh_variable


class InconsistentKBError(Exception):
    """Raised when an operation requires a consistent KB and it is not."""

    def __init__(self, violated: Axiom) -> None:
        super().__init__(f"KB is inconsistent: violates {violated}")
        self.violated = violated


def _basic_concept_atom(expression: BasicConcept, term: Term) -> Atom:
    """The atom asserting membership of *term* in a basic concept."""
    if isinstance(expression, AtomicConcept):
        return concept_atom(expression.name, term)
    assert isinstance(expression, Exists)
    witness = fresh_variable()
    if expression.role.inverse:
        return role_atom(expression.role.name, witness, term)
    return role_atom(expression.role.name, term, witness)


def _signed_role_atom(signed: Role, subject: Term, obj: Term) -> Atom:
    """The atom for a signed role over an (subject, object) pair."""
    if signed.inverse:
        return role_atom(signed.name, obj, subject)
    return role_atom(signed.name, subject, obj)


def violation_query(axiom: Axiom) -> CQ:
    """The Boolean CQ that is non-empty iff *axiom* (negative) is violated."""
    if not axiom.negative:
        raise ValueError(f"only negative axioms have violation queries: {axiom}")
    if isinstance(axiom, ConceptInclusion):
        shared = Variable("x")
        atoms = (
            _basic_concept_atom(axiom.lhs, shared),
            _basic_concept_atom(axiom.rhs, shared),
        )
        return CQ(head=(), atoms=atoms, name="violation")
    assert isinstance(axiom, RoleInclusion)
    subject, obj = Variable("x"), Variable("y")
    atoms = (
        _signed_role_atom(axiom.lhs, subject, obj),
        _signed_role_atom(axiom.rhs, subject, obj),
    )
    return CQ(head=(), atoms=atoms, name="violation")


class KnowledgeBase:
    """A DL-LiteR knowledge base pairing a TBox with an ABox."""

    def __init__(self, tbox: TBox, abox: ABox) -> None:
        self.tbox = tbox
        self.abox = abox

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------
    def first_violated_constraint(self) -> Optional[Axiom]:
        """The first violated disjointness constraint, or None."""
        from repro.queries.evaluate import evaluate_ucq
        from repro.reformulation.perfectref import reformulate_to_ucq

        facts = self.abox.fact_store()
        for axiom in self.tbox.negative_axioms():
            query = violation_query(axiom)
            reformulation = reformulate_to_ucq(query, self.tbox)
            if evaluate_ucq(reformulation, facts):
                return axiom
        return None

    def is_consistent(self) -> bool:
        """True iff no disjointness constraint is violated (Section 2.1)."""
        return self.first_violated_constraint() is None

    def check_consistency(self) -> None:
        """Raise :class:`InconsistentKBError` when the KB is inconsistent."""
        violated = self.first_violated_constraint()
        if violated is not None:
            raise InconsistentKBError(violated)

    # ------------------------------------------------------------------
    # Entailment
    # ------------------------------------------------------------------
    def entails_assertion(self, assertion: Assertion) -> bool:
        """Decide ``K |= assertion`` by Boolean query answering."""
        from repro.queries.evaluate import evaluate_ucq
        from repro.reformulation.perfectref import reformulate_to_ucq

        if isinstance(assertion, ConceptAssertion):
            body: Tuple[Atom, ...] = (
                concept_atom(assertion.concept, Constant(assertion.individual)),
            )
        elif isinstance(assertion, RoleAssertion):
            body = (
                role_atom(
                    assertion.role,
                    Constant(assertion.subject),
                    Constant(assertion.object),
                ),
            )
        else:
            raise TypeError(f"not an assertion: {assertion!r}")
        query = CQ(head=(), atoms=body, name="entails")
        reformulation = reformulate_to_ucq(query, self.tbox)
        return bool(evaluate_ucq(reformulation, self.abox.fact_store()))

    def entails(self, statement: Union[Axiom, Assertion]) -> bool:
        """Decide ``K |= statement`` for an axiom or an assertion."""
        if isinstance(statement, (ConceptInclusion, RoleInclusion)):
            return self.tbox.entails(statement)
        return self.entails_assertion(statement)

    def __str__(self) -> str:
        return f"TBox:\n{self.tbox}\nABox:\n{self.abox}"
