"""ABoxes: finite sets of concept and role assertions (the database)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple, Union


@dataclass(frozen=True, order=True)
class ConceptAssertion:
    """``A(individual)``."""

    concept: str
    individual: str

    def __str__(self) -> str:
        return f"{self.concept}({self.individual})"


@dataclass(frozen=True, order=True)
class RoleAssertion:
    """``R(subject, object)``."""

    role: str
    subject: str
    object: str

    def __str__(self) -> str:
        return f"{self.role}({self.subject}, {self.object})"


Assertion = Union[ConceptAssertion, RoleAssertion]


class ABox:
    """A mutable fact set with per-predicate indexes.

    Internally facts are kept per predicate: a set of 1-tuples for concepts
    and of 2-tuples for roles — the same *fact store* shape the naive
    evaluator (:mod:`repro.queries.evaluate`) consumes directly.
    """

    def __init__(self, assertions: Iterable[Assertion] = ()) -> None:
        self._concepts: Dict[str, Set[Tuple[str]]] = {}
        self._roles: Dict[str, Set[Tuple[str, str]]] = {}
        for assertion in assertions:
            self.add(assertion)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, assertion: Assertion) -> None:
        """Insert one assertion (idempotent)."""
        if isinstance(assertion, ConceptAssertion):
            self._concepts.setdefault(assertion.concept, set()).add(
                (assertion.individual,)
            )
        elif isinstance(assertion, RoleAssertion):
            self._roles.setdefault(assertion.role, set()).add(
                (assertion.subject, assertion.object)
            )
        else:
            raise TypeError(f"not an assertion: {assertion!r}")

    def add_concept(self, concept: str, individual: str) -> None:
        """Insert ``concept(individual)``."""
        self.add(ConceptAssertion(concept, individual))

    def add_role(self, role: str, subject: str, obj: str) -> None:
        """Insert ``role(subject, obj)``."""
        self.add(RoleAssertion(role, subject, obj))

    def remove(self, assertion: Assertion) -> bool:
        """Remove one assertion; True when it was present.

        Predicates whose last fact is removed keep an (empty) entry so the
        schema view of the ABox is stable across deletes.
        """
        if isinstance(assertion, ConceptAssertion):
            rows = self._concepts.get(assertion.concept)
            row: Tuple = (assertion.individual,)
        elif isinstance(assertion, RoleAssertion):
            rows = self._roles.get(assertion.role)
            row = (assertion.subject, assertion.object)
        else:
            raise TypeError(f"not an assertion: {assertion!r}")
        if rows is None or row not in rows:
            return False
        rows.discard(row)
        return True

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def concept_facts(self, concept: str) -> Set[Tuple[str]]:
        """The 1-tuples asserted for *concept*."""
        return self._concepts.get(concept, set())

    def role_facts(self, role: str) -> Set[Tuple[str, str]]:
        """The 2-tuples asserted for *role*."""
        return self._roles.get(role, set())

    def concept_names(self) -> FrozenSet[str]:
        """Concepts that have (or once had) an assertion."""
        return frozenset(self._concepts)

    def role_names(self) -> FrozenSet[str]:
        """Roles that have (or once had) an assertion."""
        return frozenset(self._roles)

    def individuals(self) -> FrozenSet[str]:
        """All constants appearing in any assertion."""
        names: Set[str] = set()
        for rows in self._concepts.values():
            for (individual,) in rows:
                names.add(individual)
        for rows in self._roles.values():
            for subject, obj in rows:
                names.add(subject)
                names.add(obj)
        return frozenset(names)

    def fact_store(self) -> Dict[str, Set[Tuple]]:
        """The ``{predicate: set-of-tuples}`` view used by evaluators."""
        store: Dict[str, Set[Tuple]] = {}
        store.update({name: set(rows) for name, rows in self._concepts.items()})
        store.update({name: set(rows) for name, rows in self._roles.items()})
        return store

    def assertions(self) -> Iterator[Assertion]:
        """Iterate over all assertions in deterministic order."""
        for concept in sorted(self._concepts):
            for (individual,) in sorted(self._concepts[concept]):
                yield ConceptAssertion(concept, individual)
        for role in sorted(self._roles):
            for subject, obj in sorted(self._roles[role]):
                yield RoleAssertion(role, subject, obj)

    def __len__(self) -> int:
        concept_count = sum(len(rows) for rows in self._concepts.values())
        role_count = sum(len(rows) for rows in self._roles.values())
        return concept_count + role_count

    def __contains__(self, assertion: Assertion) -> bool:
        if isinstance(assertion, ConceptAssertion):
            return (assertion.individual,) in self.concept_facts(assertion.concept)
        if isinstance(assertion, RoleAssertion):
            return (assertion.subject, assertion.object) in self.role_facts(
                assertion.role
            )
        return False

    def __str__(self) -> str:
        return "\n".join(str(a) for a in self.assertions())
