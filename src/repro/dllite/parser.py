"""A compact text syntax for TBoxes, ABoxes and conjunctive queries.

TBox axioms::

    PhDStudent <= Researcher
    exists worksWith <= Researcher
    exists worksWith- <= Researcher
    worksWith <= worksWith-            (role inclusion: see below)
    supervisedBy <= worksWith
    PhDStudent <= not exists supervisedBy-

Role-vs-concept disambiguation: a side written ``exists N`` (or ``exists
N-``) is a basic concept; a bare name followed by ``-`` is a role. When both
sides are bare names the axiom is ambiguous, and the parser consults the set
of *declared role names* — declare them first with ``role worksWith`` lines
(or pass ``role_names=...``). Undeclared bare names default to concepts.

ABox assertions::

    PhDStudent(Damian)
    worksWith(Ioana, Francois)

Queries::

    q(x) <- PhDStudent(x), worksWith(y, x)

Argument tokens that are entirely lowercase are variables; any token
starting with an upper-case letter, a digit, or written in double quotes is
a constant.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.dllite.abox import ABox, ConceptAssertion, RoleAssertion
from repro.dllite.axioms import Axiom, ConceptInclusion, RoleInclusion
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import AtomicConcept, Exists, Role
from repro.queries.atoms import Atom
from repro.queries.cq import CQ
from repro.queries.terms import Constant, Term, Variable

_ATOM_RE = re.compile(r"^\s*([A-Za-z_][\w.-]*)\s*\(([^)]*)\)\s*$")
_HEAD_RE = re.compile(r"^\s*([A-Za-z_]\w*)\s*\(([^)]*)\)\s*$")


class ParseError(ValueError):
    """Raised on malformed KB or query text."""


def _parse_side(text: str, role_names: Set[str]):
    """Parse one side of an axiom into a BasicConcept or a Role."""
    text = text.strip()
    if text.startswith("exists "):
        remainder = text[len("exists ") :].strip()
        return Exists(_parse_role_token(remainder))
    if text.endswith("-"):
        return _parse_role_token(text)
    if text in role_names:
        return Role(text)
    return AtomicConcept(text)


def _parse_role_token(text: str) -> Role:
    text = text.strip()
    if text.endswith("-"):
        return Role(text[:-1], inverse=True)
    return Role(text)


def parse_axiom(text: str, role_names: Optional[Iterable[str]] = None) -> Axiom:
    """Parse a single axiom line."""
    roles: Set[str] = set(role_names or ())
    if "<=" not in text:
        raise ParseError(f"axiom must contain '<=': {text!r}")
    lhs_text, rhs_text = text.split("<=", 1)
    rhs_text = rhs_text.strip()
    negative = False
    if rhs_text.startswith("not "):
        negative = True
        rhs_text = rhs_text[len("not ") :].strip()
    lhs = _parse_side(lhs_text, roles)
    rhs = _parse_side(rhs_text, roles)

    lhs_is_role = isinstance(lhs, Role)
    rhs_is_role = isinstance(rhs, Role)
    # Harmonize: if one side is definitely a role, the bare-name other side
    # must be a role too (role inclusions relate roles to roles).
    if lhs_is_role != rhs_is_role:
        if lhs_is_role and isinstance(rhs, AtomicConcept):
            rhs = Role(rhs.name)
            rhs_is_role = True
        elif rhs_is_role and isinstance(lhs, AtomicConcept):
            lhs = Role(lhs.name)
            lhs_is_role = True
        else:
            raise ParseError(
                f"cannot mix a role and a concept in one inclusion: {text!r}"
            )
    if lhs_is_role:
        return RoleInclusion(lhs, rhs, negative)
    return ConceptInclusion(lhs, rhs, negative)


def parse_tbox(text: str) -> TBox:
    """Parse a multi-line TBox with optional ``role``/``concept`` declarations."""
    axioms: List[Axiom] = []
    role_names: Set[str] = set()
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("role "):
            role_names.update(name.strip() for name in line[5:].split(",") if name.strip())
            continue
        if line.startswith("concept "):
            continue  # concepts need no declaration; accepted for symmetry
        axioms.append(parse_axiom(line, role_names))
    return TBox(axioms)


def parse_abox(text: str) -> ABox:
    """Parse a multi-line ABox of ``Pred(a)`` / ``Pred(a, b)`` assertions."""
    abox = ABox()
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        match = _ATOM_RE.match(line)
        if not match:
            raise ParseError(f"malformed assertion: {line!r}")
        predicate, arg_text = match.groups()
        args = [a.strip().strip('"') for a in arg_text.split(",") if a.strip()]
        if len(args) == 1:
            abox.add(ConceptAssertion(predicate, args[0]))
        elif len(args) == 2:
            abox.add(RoleAssertion(predicate, args[0], args[1]))
        else:
            raise ParseError(f"assertions must have 1 or 2 arguments: {line!r}")
    return abox


def _parse_query_term(token: str) -> Term:
    token = token.strip()
    if not token:
        raise ParseError("empty term")
    if token.startswith('"') and token.endswith('"'):
        return Constant(token[1:-1])
    if token[0].isdigit():
        return Constant(int(token)) if token.isdigit() else Constant(token)
    if token[0].islower() or token[0] == "_":
        return Variable(token)
    return Constant(token)


def parse_query(text: str) -> CQ:
    """Parse ``q(x, y) <- A(x), R(x, y)`` into a :class:`CQ`."""
    if "<-" not in text:
        raise ParseError(f"query must contain '<-': {text!r}")
    head_text, body_text = text.split("<-", 1)
    head_match = _HEAD_RE.match(head_text)
    if not head_match:
        raise ParseError(f"malformed query head: {head_text!r}")
    name, head_args = head_match.groups()
    head_terms = tuple(
        _parse_query_term(token)
        for token in head_args.split(",")
        if token.strip()
    )

    atoms: List[Atom] = []
    for chunk in re.findall(r"[A-Za-z_][\w.-]*\s*\([^)]*\)", body_text):
        match = _ATOM_RE.match(chunk)
        if not match:
            raise ParseError(f"malformed atom: {chunk!r}")
        predicate, arg_text = match.groups()
        args = tuple(
            _parse_query_term(token)
            for token in arg_text.split(",")
            if token.strip()
        )
        atoms.append(Atom(predicate, args))
    if not atoms:
        raise ParseError(f"query body has no atoms: {text!r}")
    return CQ(head=head_terms, atoms=tuple(atoms), name=name)
