"""The external ("ext") cost model: textbook formulas over statistics.

Assumptions, following §6.1 of the paper:

* uniform value distributions and independent attributes;
* joins run in linear time in their input sizes (hash joins with enough
  memory);
* data access costs compare the applicable indexes — on the simple layout
  every single- and two-attribute index exists, so an atom with a bound
  argument costs its (estimated) matching rows rather than a full scan;
* the cost of a JUCQ adds the fragments' evaluation and materialization to
  the cost of joining the materialized fragment results.

All constants live in :class:`ExternalCostParameters` and were calibrated
per backend the way the paper calibrates "a few constant coefficients".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cost.statistics import DataStatistics
from repro.queries.atoms import Atom
from repro.queries.cq import CQ
from repro.queries.jucq import JUCQ, JUSCQ, component_head
from repro.queries.scq import SCQ, USCQ
from repro.queries.terms import Term, Variable, is_variable
from repro.queries.ucq import UCQ

AnyQuery = Union[CQ, UCQ, SCQ, USCQ, JUCQ, JUSCQ]


@dataclass(frozen=True)
class ExternalCostParameters:
    """Calibration constants of the external model."""

    scan_per_row: float = 1.0
    index_access: float = 0.05
    #: Per-result-row cost of an index lookup. Calibrated equal to
    #: ``output_per_row`` for now (bucket rows still get emitted), but a
    #: separate knob so backends whose index probes return rows cheaper
    #: than scan output (the vectorized MiniRDBMS does: matching rows
    #: come straight out of a hash bucket) can be priced accordingly.
    index_probe_per_row: float = 0.4
    join_per_row: float = 1.1
    output_per_row: float = 0.4
    dedup_per_row: float = 1.1
    materialize_per_row: float = 0.9
    #: Degree of parallelism of the modeled backend's executor.
    workers: int = 1
    #: Fraction of linear scaling one extra worker actually delivers —
    #: a *measured* quantity (see :meth:`ExternalCostModel.
    #: learn_parallelism`), not an assumption: morsel scheduling, merge
    #: barriers and (on CPython) the GIL keep it well below 1.
    parallel_efficiency: float = 0.7
    #: The execution substrate the modeled backend runs on (``thread``
    #: / ``process`` / ``serial``). Learned efficiencies are keyed by
    #: substrate, so only measurements taken on *this* substrate flow
    #: into :attr:`parallel_efficiency`.
    substrate: str = "thread"

    def parallel_speedup(self) -> float:
        """Discount factor for per-row work: ``1 + eff * (workers-1)``,
        exactly 1.0 at one worker so serial costing is untouched."""
        if self.workers <= 1:
            return 1.0
        return max(1.0, 1.0 + self.parallel_efficiency * (self.workers - 1))


@dataclass
class Estimate:
    """Cost and cardinality of a (sub)query."""

    cost: float
    rows: float
    ndv: Dict[Variable, float]


class ExternalCostModel:
    """Estimates evaluation cost of any dialect from data statistics."""

    def __init__(
        self,
        statistics: DataStatistics,
        parameters: ExternalCostParameters = ExternalCostParameters(),
    ) -> None:
        self.statistics = statistics
        self.parameters = parameters
        #: Learned per-worker efficiencies by substrate name. Seeded
        #: with the active substrate's configured value; only the entry
        #: matching ``parameters.substrate`` is ever applied to
        #: estimates, so a thread-mode (GIL-bound) calibration can't
        #: poison process-mode costing or vice versa.
        self.efficiency_by_substrate: Dict[str, float] = {
            parameters.substrate: parameters.parallel_efficiency
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def estimate(self, query: AnyQuery) -> float:
        """Total estimated evaluation cost of *query*."""
        return self._dispatch(query).cost

    def estimated_rows(self, query: AnyQuery) -> float:
        """Estimated result cardinality of *query*."""
        return self._dispatch(query).rows

    def learn_parallelism(
        self,
        workers: int,
        observed_speedup: float,
        substrate: Optional[str] = None,
    ) -> float:
        """Calibrate the parallelism discount from a measurement.

        ``observed_speedup`` is the backend's measured serial/parallel
        wall-clock ratio at *workers*, taken on *substrate* (default:
        the active one). The per-worker efficiency that reproduces it
        is recorded in :attr:`efficiency_by_substrate` and — only when
        the measurement's substrate is the one this model actually
        prices (``parameters.substrate``) — stored in
        :attr:`parameters` (replacing the frozen dataclass), so
        subsequent estimates use the *observed* discount rather than an
        assumed-linear one. A measurement for a different substrate is
        kept for the record without touching live estimates. Returns
        the learned efficiency.
        """
        if workers <= 1:
            efficiency = 0.0
        else:
            efficiency = max(
                0.0, min(1.0, (observed_speedup - 1.0) / (workers - 1))
            )
        target = substrate or self.parameters.substrate
        self.efficiency_by_substrate[target] = efficiency
        if target == self.parameters.substrate:
            self.parameters = replace(
                self.parameters,
                workers=workers,
                parallel_efficiency=efficiency,
            )
        return efficiency

    # ------------------------------------------------------------------
    def _dispatch(self, query: AnyQuery) -> Estimate:
        if isinstance(query, CQ):
            return self._estimate_cq(query)
        if isinstance(query, SCQ):
            return self._estimate_join(
        query.head, [self._estimate_union_blocks(b.disjuncts) for b in query.blocks],
                [b.disjuncts[0].head for b in query.blocks],
            )
        if isinstance(query, USCQ):
            return self._estimate_union([self._dispatch(s) for s in query.scqs])
        if isinstance(query, UCQ):
            return self._estimate_union_blocks(query.disjuncts)
        if isinstance(query, JUCQ):
            inner = [self._estimate_union_blocks(c.disjuncts) for c in query.components]
            heads = [component_head(c) for c in query.components]
            return self._estimate_join(query.head, inner, heads, materialize=True)
        if isinstance(query, JUSCQ):
            inner = [self._dispatch(c) for c in query.components]
            heads = [c.scqs[0].head for c in query.components]
            return self._estimate_join(query.head, inner, heads, materialize=True)
        raise TypeError(f"unsupported query dialect: {type(query).__name__}")

    # ------------------------------------------------------------------
    def _atom_estimate(self, atom: Atom) -> Estimate:
        params = self.parameters
        cardinality = float(self.statistics.cardinality(atom.predicate))
        bound_positions = [
            i for i, term in enumerate(atom.args) if not is_variable(term)
        ]
        rows = cardinality
        for position in bound_positions:
            rows /= max(1.0, float(self.statistics.distinct(atom.predicate, position)))
        speedup = params.parallel_speedup()
        if bound_positions:
            # An applicable index turns the scan into a probe (the
            # engine's planner routes such predicates to IndexScan).
            cost = params.index_access + params.index_probe_per_row * rows / speedup
        else:
            cost = params.scan_per_row * cardinality / speedup
        ndv: Dict[Variable, float] = {}
        for position, term in enumerate(atom.args):
            if is_variable(term):
                distinct = float(self.statistics.distinct(atom.predicate, position))
                previous = ndv.get(term)
                value = max(1.0, min(distinct, rows if rows else 1.0))
                ndv[term] = min(previous, value) if previous else value
        return Estimate(cost=cost, rows=rows, ndv=ndv)

    def _estimate_cq(self, query: CQ) -> Estimate:
        params = self.parameters
        remaining = [self._atom_estimate(atom) for atom in query.atoms]
        atom_vars = [set(a.variables()) for a in query.atoms]
        # Greedy left-deep join, smallest input first (mirrors a sensible
        # engine plan under the linear-join assumption).
        order = sorted(range(len(remaining)), key=lambda i: remaining[i].rows)
        joined_vars: set = set()
        current: Estimate = None  # type: ignore[assignment]
        pending = list(order)
        while pending:
            if current is None:
                pick = pending.pop(0)
                current = remaining[pick]
                joined_vars = set(atom_vars[pick])
                continue
            # Prefer an atom sharing a variable (hash join), else cross.
            connected = [i for i in pending if atom_vars[i] & joined_vars]
            pick = connected[0] if connected else pending[0]
            pending.remove(pick)
            other = remaining[pick]
            shared = atom_vars[pick] & joined_vars
            selectivity = 1.0
            for variable in shared:
                left_ndv = current.ndv.get(variable, current.rows or 1.0)
                right_ndv = other.ndv.get(variable, other.rows or 1.0)
                selectivity /= max(1.0, max(left_ndv, right_ndv))
            rows = current.rows * other.rows * selectivity
            # Two physical alternatives, as the paper's model compares the
            # applicable indexes (§6.1): a hash join (pay the atom's own
            # access cost plus linear join work) or an index-nested-loop
            # probing the atom's table once per current row (the simple
            # layout declares every one- and two-attribute index).
            speedup = params.parallel_speedup()
            hash_cost = (
                other.cost
                + params.join_per_row * (current.rows + other.rows) / speedup
            )
            if shared:
                index_cost = current.rows * params.index_access / speedup
            else:
                index_cost = float("inf")  # no join key: cartesian, no index
            cost = (
                current.cost
                + min(hash_cost, index_cost)
                + params.output_per_row * rows / speedup
            )
            ndv: Dict[Variable, float] = {}
            for source in (current.ndv, other.ndv):
                for variable, value in source.items():
                    capped = max(1.0, min(value, rows or 1.0))
                    ndv[variable] = min(ndv.get(variable, capped), capped)
            current = Estimate(cost=cost, rows=rows, ndv=ndv)
            joined_vars |= atom_vars[pick]
        # Projection + DISTINCT on the head.
        head_ndv_product = 1.0
        for term in query.head:
            if is_variable(term):
                head_ndv_product *= current.ndv.get(term, current.rows or 1.0)
        distinct_rows = max(1.0, min(current.rows, head_ndv_product))
        cost = current.cost + (
            params.dedup_per_row * current.rows / params.parallel_speedup()
        )
        return Estimate(cost=cost, rows=distinct_rows, ndv=current.ndv)

    def _estimate_union_blocks(self, disjuncts: Sequence[CQ]) -> Estimate:
        return self._estimate_union([self._estimate_cq(cq) for cq in disjuncts])

    def _estimate_union(self, estimates: Sequence[Estimate]) -> Estimate:
        params = self.parameters
        rows = sum(e.rows for e in estimates)
        cost = sum(e.cost for e in estimates) + (
            params.dedup_per_row * rows / params.parallel_speedup()
        )
        ndv: Dict[Variable, float] = {}
        for estimate in estimates:
            for variable, value in estimate.ndv.items():
                ndv[variable] = ndv.get(variable, 0.0) + value
        ndv = {v: max(1.0, min(n, rows or 1.0)) for v, n in ndv.items()}
        return Estimate(cost=cost, rows=rows, ndv=ndv)

    def _estimate_join(
        self,
        head: Tuple[Term, ...],
        components: Sequence[Estimate],
        component_heads: Sequence[Tuple[Term, ...]],
        materialize: bool = False,
    ) -> Estimate:
        params = self.parameters
        speedup = params.parallel_speedup()
        current = components[0]
        current_vars = {t for t in component_heads[0] if is_variable(t)}
        cost = current.cost
        if materialize:
            cost += params.materialize_per_row * current.rows / speedup
        current = Estimate(cost=cost, rows=current.rows, ndv=dict(current.ndv))
        for estimate, component_head_terms in zip(
            components[1:], component_heads[1:]
        ):
            other_vars = {t for t in component_head_terms if is_variable(t)}
            shared = current_vars & other_vars
            selectivity = 1.0
            for variable in shared:
                left_ndv = current.ndv.get(variable, current.rows or 1.0)
                right_ndv = estimate.ndv.get(variable, estimate.rows or 1.0)
                selectivity /= max(1.0, max(left_ndv, right_ndv))
            rows = current.rows * estimate.rows * selectivity
            cost = (
                current.cost
                + estimate.cost
                + (
                    (params.materialize_per_row * estimate.rows if materialize else 0.0)
                    + params.join_per_row * (current.rows + estimate.rows)
                    + params.output_per_row * rows
                )
                / speedup
            )
            ndv: Dict[Variable, float] = {}
            for source in (current.ndv, estimate.ndv):
                for variable, value in source.items():
                    capped = max(1.0, min(value, rows or 1.0))
                    ndv[variable] = min(ndv.get(variable, capped), capped)
            current = Estimate(cost=cost, rows=rows, ndv=ndv)
            current_vars |= other_vars
        # Final projection + DISTINCT.
        head_ndv = 1.0
        for term in head:
            if is_variable(term):
                head_ndv *= current.ndv.get(term, current.rows or 1.0)
        distinct_rows = max(1.0, min(current.rows, head_ndv))
        return Estimate(
            cost=current.cost + params.dedup_per_row * current.rows / speedup,
            rows=distinct_rows,
            ndv=current.ndv,
        )
