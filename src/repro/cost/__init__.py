"""Cost estimation for candidate FOL reformulations.

Two estimators drive the paper's cover search (Figure 2/3 legends):

* **ext** — the authors' own textbook cost model over data statistics
  (cardinalities + per-attribute distinct counts, uniformity and
  independence assumptions, linear-time hash joins):
  :class:`~repro.cost.model.ExternalCostModel`;
* **RDBMS** — the backend's cost estimate for the translated SQL
  (Postgres ``explain`` / DB2 ``db2expln``; here the backends'
  ``estimated_cost``): :class:`~repro.cost.estimators.RDBMSCoverCost`.
"""

from repro.cost.cache import ReformulationCache
from repro.cost.statistics import DataStatistics, PredicateStatistics
from repro.cost.model import ExternalCostModel, ExternalCostParameters
from repro.cost.estimators import (
    CoverCostEstimator,
    ExternalCoverCost,
    RDBMSCoverCost,
)

__all__ = [
    "CoverCostEstimator",
    "DataStatistics",
    "ExternalCostModel",
    "ExternalCostParameters",
    "ExternalCoverCost",
    "PredicateStatistics",
    "RDBMSCoverCost",
    "ReformulationCache",
]
