"""Cover cost estimators: the bridge between covers and cost numbers.

A :class:`CoverCostEstimator` prices a (generalized) cover by building its
cover-based reformulation and estimating its evaluation cost. Two concrete
strategies, matching the paper's "ext" and "RDBMS" modes:

* :class:`ExternalCoverCost` — prices the *logical* JUCQ with the external
  cost model (no SQL, no backend round-trip; the fast path that makes
  time-limited GDL practical, §6.4);
* :class:`RDBMSCoverCost` — translates the JUCQ to SQL and asks the
  backend's own estimator; statements exceeding the backend's length limit
  price at infinity (they cannot be evaluated at all — §6.3).

Both memoize per cover key and count estimator invocations, since cost
estimation dominates GDL's running time in the paper's measurements.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple, Union

from repro.covers.cover import Cover, GeneralizedCover
from repro.covers.reformulate import (
    cover_based_reformulation,
    cover_based_uscq_reformulation,
)
from repro.cost.cache import CostCache, ReformulationCache
from repro.cost.model import ExternalCostModel
from repro.dllite.tbox import TBox

AnyCover = Union[Cover, GeneralizedCover]


class CoverCostEstimator(ABC):
    """Prices covers; memoizes; counts calls.

    ``fragment_cache`` is the fragment-level :class:`ReformulationCache`.
    By default each estimator owns a private one; an :class:`~repro.obda.
    system.OBDASystem` injects its shared instance so fragment work is
    reused across strategies, cost modes and queries.

    ``cost_cache`` is the system-shared, epoch-stamped :class:`CostCache`:
    an estimator instance lives for one search, but the covers it prices
    recur across strategies and across repeated searches; *epoch* is the
    system's data epoch at construction time, so estimates priced against
    pre-write statistics are never reused after a write.
    """

    #: Cost-mode marker separating this estimator's entries in the shared
    #: cost cache (estimates from "ext" and "rdbms" are incomparable).
    mode: str = "abstract"

    def __init__(
        self,
        tbox: TBox,
        minimize: bool = True,
        use_uscq: bool = False,
        fragment_cache: Optional[ReformulationCache] = None,
        cost_cache: Optional[CostCache] = None,
        epoch: Optional[int] = None,
    ):
        self.tbox = tbox
        self.minimize = minimize
        self.use_uscq = use_uscq
        self.calls = 0
        self._cache: Dict[Tuple, float] = {}
        self.fragment_cache = (
            fragment_cache if fragment_cache is not None else ReformulationCache()
        )
        self.cost_cache = cost_cache
        self.epoch = epoch
        # Cover keys are atom-index based, so shared-cache keys qualify
        # them with the query's canonical key — computed once per query
        # object (one search prices covers of a single query).
        self._query_keys: Dict[int, Tuple] = {}

    def reformulate(self, cover: AnyCover):
        """The reformulation whose cost is being estimated."""
        if self.use_uscq:
            return cover_based_uscq_reformulation(
                cover, self.tbox, minimize=self.minimize, cache=self.fragment_cache
            )
        return cover_based_reformulation(
            cover, self.tbox, minimize=self.minimize, cache=self.fragment_cache
        )

    def estimate(self, cover: AnyCover) -> float:
        """Memoized cost of the cover's reformulation."""
        key = cover.key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        shared_key = None
        if self.cost_cache is not None:
            shared_key = (
                self._query_key(cover.query),
                key,
                self.mode,
                self.minimize,
                self.use_uscq,
            )
            shared = self.cost_cache.get(shared_key, self.epoch)
            if shared is not None:
                self._cache[key] = shared
                return shared
        self.calls += 1
        cost = self._estimate_uncached(cover)
        self._cache[key] = cost
        if shared_key is not None:
            self.cost_cache.put(shared_key, cost, self.epoch)
        return cost

    def _query_key(self, query) -> Tuple:
        cached = self._query_keys.get(id(query))
        if cached is None:
            cached = query.canonical_key()
            self._query_keys[id(query)] = cached
        return cached

    @abstractmethod
    def _estimate_uncached(self, cover: AnyCover) -> float:
        """Price one cover (no memoization)."""


class ExternalCoverCost(CoverCostEstimator):
    """The paper's "ext" estimator: the external model on the logical plan."""

    mode = "ext"

    def __init__(
        self,
        tbox: TBox,
        model: ExternalCostModel,
        minimize: bool = True,
        use_uscq: bool = False,
        fragment_cache: Optional[ReformulationCache] = None,
        cost_cache: Optional[CostCache] = None,
        epoch: Optional[int] = None,
    ) -> None:
        super().__init__(
            tbox,
            minimize=minimize,
            use_uscq=use_uscq,
            fragment_cache=fragment_cache,
            cost_cache=cost_cache,
            epoch=epoch,
        )
        self.model = model

    def _estimate_uncached(self, cover: AnyCover) -> float:
        return self.model.estimate(self.reformulate(cover))


class RDBMSCoverCost(CoverCostEstimator):
    """The paper's "RDBMS" estimator: EXPLAIN on the translated SQL."""

    mode = "rdbms"

    def __init__(
        self,
        tbox: TBox,
        backend,
        translator,
        minimize: bool = True,
        use_uscq: bool = False,
        fragment_cache: Optional[ReformulationCache] = None,
        cost_cache: Optional[CostCache] = None,
        epoch: Optional[int] = None,
    ) -> None:
        super().__init__(
            tbox,
            minimize=minimize,
            use_uscq=use_uscq,
            fragment_cache=fragment_cache,
            cost_cache=cost_cache,
            epoch=epoch,
        )
        self.backend = backend
        self.translator = translator

    def _estimate_uncached(self, cover: AnyCover) -> float:
        from repro.engine.errors import StatementTooLongError

        sql = self.translator.translate(self.reformulate(cover))
        try:
            return self.backend.estimated_cost(sql)
        except StatementTooLongError:
            # The backend cannot even parse this reformulation; it must
            # never be selected.
            return math.inf
