"""Cover cost estimators: the bridge between covers and cost numbers.

A :class:`CoverCostEstimator` prices a (generalized) cover by building its
cover-based reformulation and estimating its evaluation cost. Two concrete
strategies, matching the paper's "ext" and "RDBMS" modes:

* :class:`ExternalCoverCost` — prices the *logical* JUCQ with the external
  cost model (no SQL, no backend round-trip; the fast path that makes
  time-limited GDL practical, §6.4);
* :class:`RDBMSCoverCost` — translates the JUCQ to SQL and asks the
  backend's own estimator; statements exceeding the backend's length limit
  price at infinity (they cannot be evaluated at all — §6.3).

Both memoize per cover key and count estimator invocations, since cost
estimation dominates GDL's running time in the paper's measurements.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple, Union

from repro.covers.cover import Cover, GeneralizedCover
from repro.covers.reformulate import (
    cover_based_reformulation,
    cover_based_uscq_reformulation,
)
from repro.cost.cache import ReformulationCache
from repro.cost.model import ExternalCostModel
from repro.dllite.tbox import TBox

AnyCover = Union[Cover, GeneralizedCover]


class CoverCostEstimator(ABC):
    """Prices covers; memoizes; counts calls.

    ``fragment_cache`` is the fragment-level :class:`ReformulationCache`.
    By default each estimator owns a private one; an :class:`~repro.obda.
    system.OBDASystem` injects its shared instance so fragment work is
    reused across strategies, cost modes and queries.
    """

    def __init__(
        self,
        tbox: TBox,
        minimize: bool = True,
        use_uscq: bool = False,
        fragment_cache: Optional[ReformulationCache] = None,
    ):
        self.tbox = tbox
        self.minimize = minimize
        self.use_uscq = use_uscq
        self.calls = 0
        self._cache: Dict[Tuple, float] = {}
        self.fragment_cache = (
            fragment_cache if fragment_cache is not None else ReformulationCache()
        )

    def reformulate(self, cover: AnyCover):
        """The reformulation whose cost is being estimated."""
        if self.use_uscq:
            return cover_based_uscq_reformulation(
                cover, self.tbox, minimize=self.minimize, cache=self.fragment_cache
            )
        return cover_based_reformulation(
            cover, self.tbox, minimize=self.minimize, cache=self.fragment_cache
        )

    def estimate(self, cover: AnyCover) -> float:
        """Memoized cost of the cover's reformulation."""
        key = cover.key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.calls += 1
        cost = self._estimate_uncached(cover)
        self._cache[key] = cost
        return cost

    @abstractmethod
    def _estimate_uncached(self, cover: AnyCover) -> float:
        """Price one cover (no memoization)."""


class ExternalCoverCost(CoverCostEstimator):
    """The paper's "ext" estimator: the external model on the logical plan."""

    def __init__(
        self,
        tbox: TBox,
        model: ExternalCostModel,
        minimize: bool = True,
        use_uscq: bool = False,
        fragment_cache: Optional[ReformulationCache] = None,
    ) -> None:
        super().__init__(
            tbox,
            minimize=minimize,
            use_uscq=use_uscq,
            fragment_cache=fragment_cache,
        )
        self.model = model

    def _estimate_uncached(self, cover: AnyCover) -> float:
        return self.model.estimate(self.reformulate(cover))


class RDBMSCoverCost(CoverCostEstimator):
    """The paper's "RDBMS" estimator: EXPLAIN on the translated SQL."""

    def __init__(
        self,
        tbox: TBox,
        backend,
        translator,
        minimize: bool = True,
        use_uscq: bool = False,
        fragment_cache: Optional[ReformulationCache] = None,
    ) -> None:
        super().__init__(
            tbox,
            minimize=minimize,
            use_uscq=use_uscq,
            fragment_cache=fragment_cache,
        )
        self.backend = backend
        self.translator = translator

    def _estimate_uncached(self, cover: AnyCover) -> float:
        from repro.engine.errors import StatementTooLongError

        sql = self.translator.translate(self.reformulate(cover))
        try:
            return self.backend.estimated_cost(sql)
        except StatementTooLongError:
            # The backend cannot even parse this reformulation; it must
            # never be selected.
            return math.inf
