"""The shared reformulation cache: fragments reformulated once, ever.

The paper measures that cost estimation — which means reformulating the
fragment queries of every candidate cover — dominates GDL's running time.
Covers explored during one search overlap heavily in their fragments, and
different strategies (GDL, EDL, Croot) over the same workload revisit the
same fragment queries again; so do repeated queries in a serving setting.

:class:`ReformulationCache` is the single memoization point for all of
them: a mapping from a *structural fragment key* to the fragment's
reformulation (a UCQ on the JUCQ path, a USCQ on the JUSCQ path), with
hit/miss counters so benchmarks can report exactly how much PerfectRef
work was shared. One instance lives on each :class:`~repro.obda.system.
OBDASystem` and is handed to every estimator the system creates.

Keys are built by the two cover-based reformulation builders in
:mod:`repro.covers.reformulate`:

* JUCQ path — ``(head, atoms, minimize)``;
* JUSCQ path — ``(head, atoms, minimize, "uscq")``.

The trailing dialect marker keeps the two dialects from ever colliding:
a UCQ cached for a fragment must never be returned where a USCQ is
expected. The cache is correct across queries because a fragment's
reformulation is a pure function of its head, its atoms, the TBox and the
``minimize`` flag — and a cache instance is scoped to one TBox (one
system).

The class speaks the mapping protocol (``in`` / ``[]``), so call sites
that historically took a plain ``dict`` keep working unchanged; plain
dicts also still work there, just without counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

#: Bound used by :class:`~repro.obda.system.OBDASystem` for its shared
#: instance: ample for every workload in the repository (the full LUBM
#: suite reformulates well under a hundred distinct fragments) while
#: keeping a long-lived serving process's memory bounded.
DEFAULT_FRAGMENT_CACHE_CAPACITY = 4096

#: Sentinel distinguishing "absent" from a stored falsy value.
_MISS = object()


class ReformulationCache:
    """Fragment-key -> reformulation LRU with hit/miss accounting.

    Thread-safe: ``answer_many`` may price covers from several worker
    threads against one shared instance. Lookups count a *hit*, stores
    count a *miss* (every store follows a failed lookup in the builders'
    check-then-compute pattern). ``capacity=None`` means unbounded (the
    sensible default for an estimator-private cache that lives for one
    search); bounded instances evict least-recently-used entries.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("cache capacity must be at least 1 (or None)")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple, default: object = None) -> object:
        """Atomic lookup: the cached value (counted as a hit) or *default*.

        Callers racing against eviction must use this rather than the
        ``in`` / ``[]`` two-step, which can drop the entry in between.
        """
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    # -- mapping protocol (drop-in for the historical plain dict) ------
    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def __getitem__(self, key: Tuple) -> object:
        with self._lock:
            value = self._entries[key]  # KeyError propagates: a true miss
            self._entries.move_to_end(key)
            self.hits += 1
        return value

    def __setitem__(self, key: Tuple, value: object) -> None:
        with self._lock:
            self.misses += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._entries)

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """A snapshot of the counters (reported on ``AnswerReport``)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }


#: Bound for the system-shared cover-cost cache. Searches revisit a few
#: thousand covers per hard query; this keeps several hot queries' covers
#: resident without letting a serving process grow unboundedly.
DEFAULT_COST_CACHE_CAPACITY = 65_536


class EpochLRU:
    """A thread-safe LRU of **epoch-stamped** entries.

    The shared machinery behind every data-dependent cache in the system
    (:class:`CostCache` here, :class:`~repro.serving.plan_cache.PlanCache`
    in the serving layer): entries stamped with the data epoch they were
    computed under are dropped on first lookup from a newer epoch
    (counted under ``stale``); entries stamped ``None`` are
    epoch-independent and served forever. A write therefore invalidates
    exactly the entries it made wrong — never a full flush.
    """

    def __init__(self, capacity: Optional[int]) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("cache capacity must be at least 1 (or None)")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Tuple[object, Optional[int]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stale = 0

    def get(self, key: Tuple, epoch: Optional[int] = None) -> Optional[object]:
        """The cached value for *key*, or ``None``; refreshes recency.

        *epoch* is the caller's current data epoch; a stamped entry from
        a different epoch is evicted and reported as a (stale) miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            value, stamp = entry
            if stamp is not None and stamp != epoch:
                # Evict only entries that are genuinely *older* than the
                # caller; a newer-stamped entry just means the caller's
                # own epoch is stale (e.g. a search that started before a
                # write) — dropping it would destroy a valid entry and
                # churn the cache.
                if epoch is None or stamp < epoch:
                    del self._entries[key]
                    self.stale += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(
        self, key: Tuple, value: object, epoch: Optional[int] = None
    ) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry if full.

        Pass the current data epoch for values that depend on the data;
        leave ``epoch=None`` for values valid across every write.
        """
        with self._lock:
            self._entries[key] = (value, epoch)
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.stale = 0

    def stats(self) -> Dict[str, int]:
        """A snapshot of the counters (reported on ``AnswerReport``)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
        }


class CostCache(EpochLRU):
    """Epoch-aware ``(query, cover) -> cost`` LRU shared across estimators.

    Estimators already memoize per instance, but an instance lives for a
    single search; this cache is the cross-search memoization point one
    :class:`~repro.obda.system.OBDASystem` shares between strategies (GDL
    and EDL walk overlapping cover spaces) and between repeated searches
    for the same query (e.g. after a plan-cache invalidation).

    A cost is a function of the data, so estimators stamp every entry
    with the system's data epoch at estimation time (see
    :class:`EpochLRU` for the invalidation rule). Keys must carry
    everything else a cost depends on: the caller builds them as
    ``(query.canonical_key(), cover.key(), mode, minimize, use_uscq)`` —
    cover keys are atom-index based and therefore only meaningful next to
    their query's key.
    """

    def __init__(
        self, capacity: Optional[int] = DEFAULT_COST_CACHE_CAPACITY
    ) -> None:
        super().__init__(capacity)
