"""Logical-level data statistics for the external cost model.

The paper's Java cost estimator keeps, per stored table attribute, the
cardinality and the number of distinct values (§6.1). Here statistics are
collected at the *predicate* level (concept and role extensions), which is
layout-independent: the simple layout maps predicates to tables one-to-one,
and the RDF layout stores the same logical extensions in wide rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.dllite.abox import ABox


@dataclass(frozen=True)
class PredicateStatistics:
    """Statistics of one predicate's extension."""

    cardinality: int
    distinct_subjects: int
    distinct_objects: int = 0  # 0 for concepts

    @property
    def is_role(self) -> bool:
        return self.distinct_objects > 0 or self.cardinality == 0


class DataStatistics:
    """Per-predicate cardinalities and distinct counts."""

    def __init__(self) -> None:
        self._predicates: Dict[str, PredicateStatistics] = {}
        self.total_facts = 0

    @classmethod
    def from_abox(cls, abox: ABox) -> "DataStatistics":
        """Collect statistics from an ABox."""
        stats = cls()
        for concept in abox.concept_names():
            rows = abox.concept_facts(concept)
            stats._predicates[concept] = PredicateStatistics(
                cardinality=len(rows),
                distinct_subjects=len({r[0] for r in rows}),
            )
        for role in abox.role_names():
            rows = abox.role_facts(role)
            stats._predicates[role] = PredicateStatistics(
                cardinality=len(rows),
                distinct_subjects=len({r[0] for r in rows}),
                distinct_objects=len({r[1] for r in rows}),
            )
        stats.total_facts = len(abox)
        return stats

    def refresh_predicate(self, name: str, rows: Set[Tuple]) -> None:
        """Recompute one predicate's statistics from its current rows.

        The write path calls this for every predicate a write touched, so
        statistics stay exact without a full rescan; the data epoch tells
        consumers which cached estimates became stale.
        """
        old = self._predicates.get(name)
        self.total_facts += len(rows) - (old.cardinality if old else 0)
        is_role = any(len(row) == 2 for row in rows)
        self._predicates[name] = PredicateStatistics(
            cardinality=len(rows),
            distinct_subjects=len({row[0] for row in rows}),
            distinct_objects=len({row[1] for row in rows}) if is_role else 0,
        )

    def for_predicate(self, name: str) -> PredicateStatistics:
        """Statistics for *name*; absent predicates have empty extensions."""
        return self._predicates.get(
            name, PredicateStatistics(cardinality=0, distinct_subjects=0)
        )

    def cardinality(self, name: str) -> int:
        return self.for_predicate(name).cardinality

    def distinct(self, name: str, position: int) -> int:
        """Distinct values in argument *position* (0 = subject, 1 = object)."""
        record = self.for_predicate(name)
        if position == 0:
            return max(1, record.distinct_subjects)
        return max(1, record.distinct_objects)

    def __len__(self) -> int:
        return len(self._predicates)
