"""EDL — Exhaustive Covers for DL (Section 5.3).

Enumerates every safe cover of Lq and (up to a cap) every generalized
cover of Gq, pricing each one. The paper shows this is hopeless beyond
very small queries — |Gq| exceeds 20,000 already for the 6-atom A6 — which
Table 6 (our ``benchmarks/test_bench_table6_search_space.py``) reproduces;
EDL exists as the optimality baseline GDL is compared against.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.covers.cover import GeneralizedCover
from repro.covers.generalized import enumerate_generalized_covers
from repro.covers.lattice import enumerate_safe_covers
from repro.cost.estimators import CoverCostEstimator
from repro.dllite.tbox import TBox
from repro.optimizer.result import SearchResult
from repro.queries.cq import CQ


def edl_search(
    query: CQ,
    tbox: TBox,
    estimator: CoverCostEstimator,
    generalized_limit: Optional[int] = 20_000,
    include_generalized: bool = True,
) -> SearchResult:
    """Exhaustively search Lq (and Gq up to *generalized_limit*).

    The generalized cap mirrors the paper, which stopped counting A6's
    space at 20,003 covers.
    """
    start = time.perf_counter()
    best_cover = None
    best_cost = None
    safe_count = 0
    generalized_count = 0

    for cover in enumerate_safe_covers(query, tbox):
        safe_count += 1
        cost = estimator.estimate(cover)
        if best_cost is None or cost < best_cost:
            best_cover, best_cost = cover, cost

    if include_generalized:
        for cover in enumerate_generalized_covers(
            query, tbox, limit=generalized_limit
        ):
            if cover.is_plain():
                continue  # already priced as a safe cover
            generalized_count += 1
            cost = estimator.estimate(cover)
            if best_cost is None or cost < best_cost:
                best_cover, best_cost = cover, cost

    assert best_cover is not None and best_cost is not None
    return SearchResult(
        cover=best_cover,
        cost=best_cost,
        safe_covers_explored=safe_count,
        generalized_covers_explored=generalized_count,
        cost_estimations=estimator.calls,
        elapsed_seconds=time.perf_counter() - start,
    )
