"""GDL — Greedy Covers for DL (Algorithm 1 of the paper).

Starting from the root cover, GDL repeatedly evaluates the *moves*
available from the current cover:

* **union** two fragments — merging ``f1||g1`` and ``f2||g2`` into
  ``(f1 ∪ f2)||(g1 ∪ g2)`` (the g-parts stay a union of root fragments,
  hence safe);
* **enlarge** a fragment ``f||g`` with one atom ``a`` join-connected to
  ``f`` — adding a semijoin reducer (Section 5.2).

The cheapest move is applied when it does not degrade the current cost
(line 3's ``<=`` admits sideways moves once, guarded here against cycles by
a visited set); the search stops when no move helps or the optional *time
budget* runs out — §6.4's time-limited GDL, which the paper finds nearly as
good as the full run because interesting covers are found early.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from repro.covers.cover import Cover, GeneralizedCover, GeneralizedFragment
from repro.covers.safety import root_cover
from repro.cost.estimators import CoverCostEstimator
from repro.dllite.tbox import TBox
from repro.optimizer.result import SearchResult
from repro.queries.cq import CQ


def _union_moves(cover: GeneralizedCover) -> Iterator[GeneralizedCover]:
    """All covers obtained by unioning two fragments of *cover*."""
    fragments = cover.fragments
    for i in range(len(fragments)):
        for j in range(i + 1, len(fragments)):
            first, second = fragments[i], fragments[j]
            merged = GeneralizedFragment(
                first.f | second.f, first.g | second.g
            )
            remaining = [
                gf for k, gf in enumerate(fragments) if k not in (i, j)
            ]
            try:
                yield GeneralizedCover(cover.query, tuple(remaining) + (merged,))
            except ValueError:
                continue  # inclusion among fragments: not a valid cover


class _MoveEnumerator:
    """Per-search enumeration state for *enlarge* moves.

    The atom-adjacency map depends only on the query, and a fragment's
    frontier only on its ``f`` part — both recur across the covers one
    greedy descent visits, so they are computed once here instead of on
    every :func:`gdl_search` step.
    """

    def __init__(self, query: CQ) -> None:
        self.adjacency: Dict[int, Set[int]] = {
            i: set() for i in range(len(query.atoms))
        }
        for positions in query.atoms_sharing_variable().values():
            for i in positions:
                for j in positions:
                    if i != j:
                        self.adjacency[i].add(j)
        self._frontiers: Dict[FrozenSet[int], Tuple[int, ...]] = {}

    def frontier(self, f: FrozenSet[int]) -> Tuple[int, ...]:
        """Atom indices join-connected to ``f`` but outside it, sorted."""
        cached = self._frontiers.get(f)
        if cached is None:
            reachable: Set[int] = set()
            for index in f:
                reachable |= self.adjacency[index]
            cached = tuple(sorted(reachable - f))
            self._frontiers[f] = cached
        return cached

    def enlarge_moves(
        self, cover: GeneralizedCover
    ) -> Iterator[GeneralizedCover]:
        """All covers obtained by adding one connected reducer atom."""
        for fragment in cover.fragments:
            for atom_index in self.frontier(fragment.f):
                try:
                    yield cover.enlarge(fragment, atom_index)
                except ValueError:
                    continue


def gdl_search(
    query: CQ,
    tbox: TBox,
    estimator: CoverCostEstimator,
    time_budget_seconds: Optional[float] = None,
    max_steps: int = 1_000,
    enable_generalized: bool = True,
) -> SearchResult:
    """Greedy cover search (Algorithm 1), optionally time-limited.

    ``enable_generalized=False`` restricts the search to *union* moves
    (the safe-cover lattice Lq only) — the ablation quantifying what the
    semijoin-reducer space Gq buys (§6.3 reports GDL picks a generalized
    cover always under the external model).
    """
    start = time.perf_counter()

    def out_of_time() -> bool:
        return (
            time_budget_seconds is not None
            and time.perf_counter() - start > time_budget_seconds
        )

    current = GeneralizedCover.from_cover(root_cover(query, tbox))
    current_cost = estimator.estimate(current)
    visited: Set[Tuple] = {current.key()}
    safe_explored = 1
    generalized_explored = 0
    hit_budget = False
    moves = _MoveEnumerator(query)

    for _step in range(max_steps):
        move: Optional[GeneralizedCover] = None
        move_cost: Optional[float] = None
        move_is_generalized = False
        move_kinds = [("union", _union_moves(current))]
        if enable_generalized:
            move_kinds.append(("enlarge", moves.enlarge_moves(current)))
        for kind, candidates in move_kinds:
            for candidate in candidates:
                if out_of_time():
                    hit_budget = True
                    break
                key = candidate.key()
                if key in visited:
                    continue
                visited.add(key)
                if candidate.is_plain():
                    safe_explored += 1
                else:
                    generalized_explored += 1
                cost = estimator.estimate(candidate)
                accept_first = move is None and cost <= current_cost
                beats_move = move is not None and cost < move_cost  # type: ignore[operator]
                if accept_first or beats_move:
                    move, move_cost = candidate, cost
                    move_is_generalized = not candidate.is_plain()
            if hit_budget:
                break
        if move is None:
            break
        current, current_cost = move, move_cost  # type: ignore[assignment]
        if hit_budget:
            break

    return SearchResult(
        cover=current,
        cost=current_cost,
        safe_covers_explored=safe_explored,
        generalized_covers_explored=generalized_explored,
        cost_estimations=estimator.calls,
        elapsed_seconds=time.perf_counter() - start,
        hit_time_budget=hit_budget,
    )
