"""The outcome of a cover search."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.covers.cover import Cover, GeneralizedCover

AnyCover = Union[Cover, GeneralizedCover]


@dataclass
class SearchResult:
    """Best cover found, its estimated cost, and search effort counters."""

    cover: AnyCover
    cost: float
    safe_covers_explored: int = 0
    generalized_covers_explored: int = 0
    cost_estimations: int = 0
    elapsed_seconds: float = 0.0
    hit_time_budget: bool = False

    @property
    def total_covers_explored(self) -> int:
        return self.safe_covers_explored + self.generalized_covers_explored

    def picked_generalized(self) -> bool:
        """True when the winning cover uses semijoin-reducer atoms.

        §6.3 reports GDL picks a generalized cover always with the external
        model and about half the time with the RDBMS estimator.
        """
        return isinstance(self.cover, GeneralizedCover) and not self.cover.is_plain()
