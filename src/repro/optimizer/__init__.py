"""Cost-based cover search: EDL (exhaustive) and GDL (greedy, Algorithm 1).

Both algorithms search the safe-cover lattice Lq and the generalized space
Gq for the cover whose reformulation has the lowest estimated evaluation
cost (Problem 1 of the paper). EDL enumerates — impractical beyond very
small queries (Table 6); GDL walks greedily from the root cover via
*union* and *enlarge* moves, optionally under a time budget (§6.4).
"""

from repro.optimizer.result import SearchResult
from repro.optimizer.edl import edl_search
from repro.optimizer.gdl import gdl_search

__all__ = ["SearchResult", "edl_search", "gdl_search"]
