"""Long-lived per-shard engine worker processes (the process substrate).

:class:`ProcessShardWorker` hosts one child backend in its own forked
interpreter and exposes the full :class:`~repro.storage.base.Backend`
surface as a pipe-RPC proxy, so :class:`~repro.storage.sharded_backend.
ShardedBackend` can own a list of these exactly as it owns in-process
children — routing, merge semantics and the write barrier are unchanged;
only the substrate under each shard moves across a process boundary.

Lifecycle
---------
Workers are forked at construction (the ``fork`` start method keeps
startup at milliseconds and lets arbitrary ``child_factory`` callables
cross without pickling — the backend itself is built *inside* the
worker, never shipped), run a strict request/reply loop, and live until
:meth:`ProcessShardWorker.close` — which sends ``close``, joins, and
escalates to ``terminate`` only if the worker does not exit in time.
Workers are daemonic and additionally registered with an ``atexit``
backstop, so an interpreter that forgets to close a backend still never
hangs at exit or leaks shared memory: segments are created and unlinked
only in the coordinator process (see :mod:`repro.storage.shm_exchange`),
and the parent's ``resource_tracker`` is started *before* the first
fork so every worker shares it.

Failure handling
----------------
Every reply wait runs under the ``REPRO_RPC_TIMEOUT_MS`` deadline
(``conn.poll``): a dead worker surfaces as :class:`WorkerCrashedError`,
a silent one as :class:`WorkerTimeoutError`, and either marks the proxy
*broken* — the request/reply stream is desynchronized, so later calls
fail fast until the supervision layer (:mod:`repro.storage.supervisor`)
recycles the worker. Fault injection (:mod:`repro.faults`) hooks the
request loop so chaos tests can kill, delay, or mute a worker
deterministically.

Result transport
----------------
``execute`` replies inline (one pickle) for small results; larger ones
use the shared-memory handshake: the worker offers ``(nbytes, meta)``,
the coordinator creates a segment and replies with its name, the worker
attaches, writes the packed columns, closes, and acks — after which the
coordinator decodes rows out of the segment and unlinks it. Errors are
pre-checked for picklability in the worker (falling back to a
``RuntimeError`` carrying the repr), so a failing shard surfaces the
real exception type at the coordinator whenever it can cross the wire.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults import FaultRuntime, TransientWorkerFault, WorkerFaultConfig
from repro.lifecycle import interpreter_exiting, mark_interpreter_exiting
from repro.obs.metrics import get_registry, reset_registry
from repro.obs.trace import Tracer
from repro.storage.base import Backend, BulkLoader, Row
from repro.storage.layouts import LayoutData
from repro.storage.shm_exchange import (
    pack_columns,
    should_inline,
    shm_min_cells,
    unpack_rows,
)

#: How long ``close`` waits for a worker to exit before terminating it.
CLOSE_TIMEOUT = 5.0

#: Environment knob: per-RPC deadline in milliseconds. Every reply wait
#: in :meth:`ProcessShardWorker._call` / the execute handshake runs
#: under ``conn.poll(timeout)`` with this budget, so a hung or wedged
#: worker surfaces as a :class:`WorkerTimeoutError` instead of blocking
#: ``conn.recv()`` forever. ``0`` (or negative) disables the deadline.
RPC_TIMEOUT_ENV = "REPRO_RPC_TIMEOUT_MS"

#: Default per-RPC deadline: generous against real queries (tier-1
#: statements run in milliseconds), tight against a genuinely hung
#: worker.
DEFAULT_RPC_TIMEOUT_MS = 30_000.0


def rpc_timeout_seconds() -> Optional[float]:
    """The configured per-RPC deadline in seconds (``REPRO_RPC_TIMEOUT_MS``);
    ``None`` when deadlines are disabled."""
    raw = os.environ.get(RPC_TIMEOUT_ENV)
    if raw is None:
        millis = DEFAULT_RPC_TIMEOUT_MS
    else:
        try:
            millis = float(raw)
        except ValueError:
            millis = DEFAULT_RPC_TIMEOUT_MS
    if millis <= 0:
        return None
    return millis / 1000.0


class WorkerError(RuntimeError):
    """Base for coordinator-side worker RPC failures (the transport
    failed, not the query — see the subclasses). The supervision layer
    (:mod:`repro.storage.supervisor`) treats any ``WorkerError`` as
    "this worker must be recycled": after one, the request/reply stream
    can no longer be trusted."""


class WorkerCrashedError(WorkerError):
    """The worker process died (or its pipe closed) mid-conversation."""


class WorkerTimeoutError(WorkerError):
    """A reply missed the per-RPC deadline (``REPRO_RPC_TIMEOUT_MS``).

    The worker may still be alive and mid-statement — but a late reply
    can no longer be matched to its request, so the proxy marks itself
    broken and every later call fails fast until the worker is recycled.
    """

    def __init__(self, cmd: str, seconds: float) -> None:
        super().__init__(
            f"worker reply to {cmd!r} missed its {seconds:g}s RPC deadline"
        )
        self.cmd = cmd
        self.seconds = seconds

#: Live workers, for the atexit backstop (weak: a collected proxy has
#: already closed or leaked its process, and its daemon flag covers us).
_LIVE_WORKERS: "weakref.WeakSet[ProcessShardWorker]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False
_ATEXIT_LOCK = threading.Lock()


def _close_live_workers() -> None:
    """atexit backstop: close any worker a caller forgot to.

    Latches interpreter shutdown first so supervisors and replica
    healers stop forking replacements while the process table drains —
    otherwise ``multiprocessing``'s own exit hook (which joins children
    without a timeout) can wait forever on a churn of fresh forks.
    """
    mark_interpreter_exiting()
    for worker in list(_LIVE_WORKERS):
        try:
            worker.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def _register_atexit() -> None:
    global _ATEXIT_REGISTERED
    with _ATEXIT_LOCK:
        if not _ATEXIT_REGISTERED:
            atexit.register(_close_live_workers)
            _ATEXIT_REGISTERED = True


def _sendable(exc: BaseException) -> BaseException:
    """The exception itself if it survives a pickle round-trip, else a
    ``RuntimeError`` carrying its repr (default ``Exception`` pickling
    breaks on custom ``__init__`` signatures)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _run_execute(backend: Backend, sql: str) -> Tuple[int, List]:
    """Evaluate *sql* in the worker, columnar when the backend can.

    Backends exposing ``execute_columns`` (the embedded engine does)
    answer columnar end to end — result vectors go straight into the
    wire format without ever materializing row tuples in the worker.
    """
    columns_api = getattr(backend, "execute_columns", None)
    if columns_api is not None:
        return columns_api(sql)
    result_rows = backend.execute(sql)
    nrows = len(result_rows)
    return nrows, list(zip(*result_rows)) if result_rows else []


def _serve_execute(
    conn,
    backend: Backend,
    sql: str,
    min_cells: int,
    traced: bool = False,
    faults: Optional[FaultRuntime] = None,
) -> None:
    """Worker side of one ``execute``: inline reply or shm handshake.

    With *traced* the execution runs under a worker-local
    :class:`~repro.obs.trace.Tracer` and the reply carries the span
    subtree as a plain dict (third element), stamped with this worker's
    pid for attribution and ``clock="worker"`` — a forked process's
    monotonic clock is not comparable to the coordinator's, so grafted
    durations are meaningful but offsets are not.

    A non-``segment`` message where the segment name is expected is the
    coordinator **aborting the handshake** (its allocation failed, or a
    fault was injected): consume it and send nothing, which keeps the
    request/reply stream synchronized. An injected shm-attach fault
    raises :class:`~repro.faults.TransientWorkerFault` *before*
    attaching — the request loop replies with the error, and the
    coordinator (which is blocked on the write ack) unlinks its segment
    on that same error path.
    """
    started = time.perf_counter()
    span_dict = None
    if traced:
        tracer = Tracer()
        with tracer.root(
            "shard.worker", pid=os.getpid(), clock="worker"
        ) as root:
            nrows, columns = _run_execute(backend, sql)
    else:
        nrows, columns = _run_execute(backend, sql)
    execution = getattr(backend, "last_execution", None)
    batches = getattr(execution, "batches", 0) if execution is not None else 0
    registry = get_registry()
    registry.inc("repro.worker.statements")
    registry.observe(
        "repro.worker.execute.seconds", time.perf_counter() - started
    )
    if traced:
        root.set(rows=nrows, batches=batches)
        span_dict = root.to_dict()
    if not nrows or should_inline(nrows, len(columns), min_cells):
        conn.send(
            (
                "rows",
                (list(zip(*columns)) if nrows else [], batches, span_dict),
            )
        )
        return
    meta, payload = pack_columns(nrows, columns)
    conn.send(("shm", (len(payload), meta, batches, span_dict)))
    tag, name = conn.recv()
    if tag != "segment":  # coordinator aborted (e.g. allocation failed)
        return
    if faults is not None and faults.fail_shm_attach():
        raise TransientWorkerFault(
            f"injected shm attach failure (segment {name})"
        )
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    try:
        segment.buf[: len(payload)] = payload
    finally:
        segment.close()
    conn.send(("ok", None))


def _worker_main(
    conn,
    factory: Callable[[], Backend],
    fault_config: Optional[WorkerFaultConfig] = None,
) -> None:
    """The worker process: build the backend, serve the request loop.

    With a *fault_config* (chaos testing, see :mod:`repro.faults`) every
    received command first passes the fault runtime, which may kill this
    process, delay, or swallow the reply. ``KeyboardInterrupt`` /
    ``SystemExit`` exit the loop cleanly (backend closed, pipe closed)
    instead of being pickled back as query errors — a Ctrl-C fans out to
    every forked worker's main thread, and treating it as a query result
    would mask the shutdown.
    """
    try:
        backend = factory()
    except (KeyboardInterrupt, SystemExit):
        conn.close()
        return
    except Exception as exc:
        try:
            conn.send(("error", _sendable(exc)))
        finally:
            conn.close()
        return
    conn.send(("ok", getattr(backend, "name", "backend")))
    # The fork copied the parent's process-wide registry, counts and
    # all; replaying those counts from every worker would multiply the
    # coordinator's own traffic. Start this process from zero — the
    # "metrics" command then ships only what *this worker* recorded.
    reset_registry()
    min_cells = shm_min_cells()
    faults = FaultRuntime(fault_config) if fault_config is not None else None
    bulk = None  # the open worker-side bulk-load session, if any
    while True:
        try:
            cmd, payload = conn.recv()
        except (EOFError, OSError):
            break
        except (KeyboardInterrupt, SystemExit):
            # A Ctrl-C fans out to every forked worker while it is
            # blocked here; exit the loop cleanly (backend closed, pipe
            # closed, exit code 0) instead of dying with a traceback.
            break
        if cmd == "close":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        if faults is not None and faults.before_command(cmd) == "drop":
            # Swallow the reply: the coordinator's RPC deadline is what
            # turns this into a WorkerTimeoutError instead of a hang.
            continue
        try:
            if cmd == "execute":
                _serve_execute(conn, backend, payload, min_cells, faults=faults)
            elif cmd == "execute_traced":
                _serve_execute(
                    conn, backend, payload, min_cells, traced=True, faults=faults
                )
            elif cmd == "metrics":
                conn.send(("ok", get_registry().snapshot()))
            elif cmd == "load":
                backend.load(payload)
                conn.send(("ok", None))
            elif cmd == "insert":
                backend.insert_rows(payload[0], payload[1])
                conn.send(("ok", None))
            elif cmd == "delete":
                conn.send(("ok", backend.delete_rows(payload[0], payload[1])))
            elif cmd == "apply":
                backend.apply_changes(payload[0], payload[1])
                conn.send(("ok", None))
            elif cmd == "bulk_begin":
                if bulk is not None:
                    raise RuntimeError("bulk load already in progress")
                bulk = backend.bulk_load()
                conn.send(("ok", None))
            elif cmd == "bulk_table":
                if bulk is None:
                    raise RuntimeError("no bulk load in progress")
                name, columns, indexes, shard_key = payload
                bulk.create_table(name, columns, indexes, shard_key)
                conn.send(("ok", None))
            elif cmd == "bulk_append":
                if bulk is None:
                    raise RuntimeError("no bulk load in progress")
                # The coordinator-side session already tuple-normalized
                # and validated the batch; go straight to the hook.
                bulk._append(payload[0], payload[1])
                conn.send(("ok", None))
            elif cmd == "bulk_end":
                if bulk is None:
                    raise RuntimeError("no bulk load in progress")
                session, bulk = bulk, None
                if payload:
                    session.finish()
                else:
                    session.abort()
                conn.send(("ok", None))
            elif cmd == "stats":
                conn.send(
                    ("ok", {n: backend.table_statistics(n) for n in payload})
                )
            elif cmd == "cost":
                conn.send(("ok", backend.estimated_cost(payload)))
            elif cmd == "explain":
                sql, analyze = payload
                explain = getattr(backend, "explain_text", None)
                if explain is None:
                    text = ""
                elif analyze:
                    try:
                        text = explain(sql, analyze=True)
                    except TypeError:  # backend without the analyze mode
                        text = explain(sql)
                else:
                    text = explain(sql)
                conn.send(("ok", text))
            elif cmd == "describe":
                hosted_db = getattr(backend, "db", None)
                conn.send(
                    ("ok", {"workers": getattr(hosted_db, "workers", None)})
                )
            else:
                conn.send(("error", RuntimeError(f"unknown command {cmd!r}")))
        except (KeyboardInterrupt, SystemExit):
            break
        except Exception as exc:
            try:
                conn.send(("error", _sendable(exc)))
            except (BrokenPipeError, OSError):
                break
    try:
        backend.close()
    finally:
        conn.close()


@dataclass
class WorkerEngineInfo:
    """A snapshot of the worker-hosted engine's configuration, shaped
    like the ``db`` attribute in-process children expose (so callers
    that introspect ``child.db.workers`` work across the substrate)."""

    workers: Optional[int] = None


@dataclass
class WorkerExecution:
    """Telemetry from one proxied execute (duck-compatible with the
    ``batches``/``rows`` attributes ShardedBackend reads)."""

    batches: int = 0
    rows: int = 0
    #: ``"inline"`` (pipe pickle) or ``"shm"`` (columnar segment).
    transport: str = "inline"


class _WorkerBulkLoader(BulkLoader):
    """Bulk-load session proxied into a worker process.

    Each operation is one RPC (``bulk_begin`` / ``bulk_table`` /
    ``bulk_append`` / ``bulk_end``); the deferred index and statistics
    work happens inside the worker, in its own hosted loader. Appends
    stream batch-by-batch, so the coordinator never holds the shard's
    full partition.
    """

    def __init__(self, worker: "ProcessShardWorker") -> None:
        super().__init__(worker)
        worker._call("bulk_begin")

    def create_table(self, name, columns, indexes=(), shard_key=None) -> None:
        """Declare one table inside the worker's session."""
        super().create_table(name, columns, indexes, shard_key)
        self._backend._call(
            "bulk_table",
            (name, tuple(columns), tuple(tuple(ix) for ix in indexes), shard_key),
        )

    def _append(self, table: str, rows: List[Row]) -> None:
        self._backend._call("bulk_append", (table, rows))

    def _finish(self) -> None:
        self._backend._call("bulk_end", True)

    def _abort(self) -> None:
        try:
            self._backend._call("bulk_end", False)
        except (WorkerError, RuntimeError):
            # A dead/closed worker has nothing left to abort; the
            # supervision layer recycles it.
            pass


def process_workers_supported() -> bool:
    """Whether this platform can host forked shard workers."""
    from repro.engine.parallel import process_substrate_available

    return process_substrate_available()


class ProcessShardWorker(Backend):
    """One shard's engine, hosted in a forked worker process.

    Implements the :class:`~repro.storage.base.Backend` surface by
    strict request/reply RPC over a private pipe (one lock per worker
    serializes calls; different workers' calls overlap freely — that is
    exactly the scatter parallelism). The child backend is built inside
    the worker by *factory*, so its tables never exist in the
    coordinator's address space.
    """

    def __init__(
        self,
        factory: Callable[[], Backend],
        shard: int = 0,
        label: str = "shard",
        rpc_timeout: Optional[float] = None,
        fault_config: Optional[WorkerFaultConfig] = None,
    ) -> None:
        import multiprocessing
        from multiprocessing import resource_tracker

        if interpreter_exiting():
            # A worker forked now would inherit a dying runtime, exit
            # immediately and feed a respawn loop that keeps the exit
            # hook's untimed join from ever draining.
            raise RuntimeError(
                "interpreter is shutting down; refusing to fork a "
                "shard worker"
            )
        ctx = multiprocessing.get_context("fork")
        # Start the resource tracker *before* forking so every worker
        # inherits it: segment register/unregister messages from both
        # sides then land in one tracker, and coordinator-side unlink
        # leaves nothing for exit-time leak warnings to find.
        resource_tracker.ensure_running()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_worker_main,
            args=(child_conn, factory, fault_config),
            daemon=True,
            name=f"repro-{label}-{shard}",
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        self._lock = threading.Lock()
        self._closed = False
        #: Set after any transport-level failure (crash, missed RPC
        #: deadline): the request/reply stream is desynchronized, so
        #: every later call fails fast with ``WorkerCrashedError`` until
        #: the supervision layer recycles this proxy.
        self._broken = False
        self.shard = shard
        self.name = f"worker[{label}-{shard}]"
        #: Per-RPC reply deadline in seconds (``None`` = wait forever);
        #: default from ``REPRO_RPC_TIMEOUT_MS``.
        self.rpc_timeout = (
            rpc_timeout_seconds() if rpc_timeout is None else rpc_timeout
        )
        self.last_execution: Optional[WorkerExecution] = None
        #: Cumulative transport counters (merged into shard telemetry).
        self.shm_results = 0
        self.shm_bytes = 0
        self.inline_results = 0
        tag, value = self._recv(timeout=self.rpc_timeout, cmd="startup")
        if tag != "ok":  # factory failed inside the worker
            self._abandon()
            raise value
        self.name = f"worker[{value}]"
        _register_atexit()
        _LIVE_WORKERS.add(self)

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------
    @property
    def pid(self) -> Optional[int]:
        """The worker process's pid (chaos tests SIGKILL through this)."""
        return self._process.pid

    @property
    def sentinel(self) -> int:
        """The process sentinel fd, for ``multiprocessing.connection.
        wait``-based death polling by the supervisor's monitor."""
        return self._process.sentinel

    def is_alive(self) -> bool:
        """Whether this proxy is still usable: open, stream trusted,
        and the worker process running."""
        return (
            not self._closed
            and not self._broken
            and self._process.is_alive()
        )

    def _mark_broken(self) -> None:
        self._broken = True

    def _send(self, message) -> None:
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            self._mark_broken()
            raise WorkerCrashedError(
                f"{self.name} (shard {self.shard}) pipe closed during send"
            ) from exc

    def _recv(self, timeout: Optional[float] = None, cmd: str = "rpc"):
        """One reply off the pipe, under an optional deadline.

        ``conn.poll`` returns ready when data *or* EOF is pending, so a
        dead worker surfaces immediately as ``WorkerCrashedError``, not
        as a full deadline wait; only a genuinely silent worker runs the
        clock out into ``WorkerTimeoutError``. Both mark the proxy
        broken — an eventual late reply could not be matched to its
        request.
        """
        if timeout is not None:
            try:
                ready = self._conn.poll(timeout)
            except (BrokenPipeError, OSError) as exc:
                self._mark_broken()
                raise WorkerCrashedError(
                    f"{self.name} (shard {self.shard}) pipe failed in poll"
                ) from exc
            if not ready:
                self._mark_broken()
                raise WorkerTimeoutError(cmd, timeout)
        try:
            reply = self._conn.recv()
        except (EOFError, OSError) as exc:
            self._mark_broken()
            raise WorkerCrashedError(
                f"{self.name} (shard {self.shard}) died mid-conversation"
            ) from exc
        if reply[0] == "error":
            raise reply[1]
        return reply

    def _check_usable(self) -> None:
        if self._closed:
            raise RuntimeError("ProcessShardWorker is closed")
        if self._broken:
            raise WorkerCrashedError(
                f"{self.name} (shard {self.shard}) stream is broken; "
                "the worker must be recycled"
            )

    def _call(self, cmd: str, payload=None, timeout: Optional[float] = None):
        self._check_usable()
        if timeout is None:
            timeout = self.rpc_timeout
        with self._lock:
            self._send((cmd, payload))
            tag, value = self._recv(timeout=timeout, cmd=cmd)
        if tag != "ok":  # pragma: no cover - protocol violation
            raise RuntimeError(f"unexpected worker reply {tag!r}")
        return value

    # ------------------------------------------------------------------
    # Backend surface
    # ------------------------------------------------------------------
    def load(self, data: LayoutData) -> None:
        """Ship the shard's slice of the layout into the worker."""
        self._call("load", data)

    def execute(self, sql: str, timeout: Optional[float] = None) -> List[Row]:
        """Evaluate *sql* in the worker; decode the columnar reply.
        *timeout* overrides the per-RPC deadline for this statement."""
        rows, _span = self._execute_rpc("execute", sql, timeout)
        return rows

    def execute_traced(
        self, sql: str, timeout: Optional[float] = None
    ) -> Tuple[List[Row], Optional[Dict]]:
        """Evaluate *sql* with a worker-local trace; returns the rows
        plus the worker's span subtree as a plain dict (``None`` only if
        the worker produced none), ready for :meth:`repro.obs.trace.
        Span.graft` into the coordinator's trace."""
        return self._execute_rpc("execute_traced", sql, timeout)

    def _execute_rpc(
        self, cmd: str, sql: str, timeout: Optional[float] = None
    ) -> Tuple[List[Row], Optional[Dict]]:
        self._check_usable()
        if timeout is None:
            timeout = self.rpc_timeout
        # One deadline covers the whole conversation (result reply plus
        # the shm write ack), so a handshake cannot stretch one logical
        # RPC to N deadlines.
        expiry = None if timeout is None else time.monotonic() + timeout

        def remaining() -> Optional[float]:
            return None if expiry is None else expiry - time.monotonic()

        with self._lock:
            self._send((cmd, sql))
            tag, payload = self._recv(timeout=remaining(), cmd=cmd)
            if tag == "rows":
                rows, batches, span = payload
                transport = "inline"
                self.inline_results += 1
            elif tag == "shm":
                nbytes, meta, batches, span = payload
                from multiprocessing import shared_memory

                try:
                    segment = shared_memory.SharedMemory(
                        create=True, size=max(1, nbytes)
                    )
                except Exception:
                    # Abort the handshake explicitly: the worker is
                    # blocked waiting for a segment name, and without
                    # this message it would swallow the *next* command
                    # tuple as the name and desynchronize the stream.
                    self._send(("abort", None))
                    raise
                try:
                    self._send(("segment", segment.name))
                    # Worker's write ack (or its error). The finally
                    # guarantees the coordinator-created segment is
                    # unlinked even when the worker dies or times out
                    # between create and attach — segments must never
                    # outlive the RPC that allocated them.
                    self._recv(timeout=remaining(), cmd=cmd)
                    rows = unpack_rows(segment.buf, meta)
                finally:
                    segment.close()
                    segment.unlink()
                transport = "shm"
                self.shm_results += 1
                self.shm_bytes += nbytes
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unexpected worker reply {tag!r}")
        self.last_execution = WorkerExecution(
            batches=batches, rows=len(rows), transport=transport
        )
        if span is not None:
            # The coordinator knows the shard and transport; the worker
            # does not — annotate its subtree before it is grafted.
            attributes = span.setdefault("attributes", {})
            attributes["shard"] = self.shard
            attributes["transport"] = transport
        return rows, span

    @property
    def db(self) -> WorkerEngineInfo:
        """Engine configuration of the hosted backend, fetched live."""
        return WorkerEngineInfo(**self._call("describe"))

    def estimated_cost(self, sql: str) -> float:
        """The hosted backend's own cost estimate for *sql*."""
        return self._call("cost", sql)

    def explain_text(self, sql: str, analyze: bool = False) -> str:
        """The hosted backend's EXPLAIN (or EXPLAIN ANALYZE) rendering."""
        return self._call("explain", (sql, analyze))

    def bulk_load(self) -> BulkLoader:
        """A bulk-ingest session hosted inside the worker process."""
        return _WorkerBulkLoader(self)

    def insert_rows(self, table: str, rows: List[Row]) -> None:
        """Replicate an insert into the worker (set semantics)."""
        self._call("insert", (table, rows))

    def delete_rows(self, table: str, rows: List[Row]) -> int:
        """Replicate a delete into the worker; removed-row count back."""
        return self._call("delete", (table, rows))

    def apply_changes(self, inserts, deletes) -> None:
        """Replicate a multi-table delta atomically inside the worker."""
        self._call("apply", (inserts, deletes))

    def table_statistics(self, table: str):
        """The worker's catalog statistics for one table."""
        return self._call("stats", [table])[table]

    def statistics_many(self, tables) -> Dict[str, object]:
        """Statistics for many tables in one round-trip (the sharded
        post-write re-merge batches through this)."""
        return self._call("stats", list(tables))

    def metrics_snapshot(self) -> Optional[Dict]:
        """The worker process's own metrics registry, one round-trip
        (same batching shape as :meth:`statistics_many`); merged by the
        coordinator into the unified view. ``None`` once the worker is
        closed — a post-close ``metrics()`` read must degrade, not
        raise."""
        if self._closed:
            return None
        return self._call("metrics")

    # ------------------------------------------------------------------
    def _abandon(self) -> None:
        """Tear down without the close handshake (startup failure)."""
        self._closed = True
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        self._process.join(timeout=CLOSE_TIMEOUT)
        if self._process.is_alive():  # pragma: no cover
            self._process.terminate()
            self._process.join(timeout=1.0)
        self._process.close()

    def kill(self) -> None:
        """Hard teardown without the close handshake. Idempotent.

        The supervision layer discards crashed or timed-out workers
        through this: after a transport failure the stream cannot carry
        the ``close`` exchange, and a wedged worker would make the
        graceful path wait out :data:`CLOSE_TIMEOUT` for nothing.
        """
        if self._closed:
            return
        self._closed = True
        self._broken = True
        try:
            self._process.terminate()
        except (ValueError, OSError):  # pragma: no cover - already gone
            pass
        self._process.join(timeout=CLOSE_TIMEOUT)
        if self._process.is_alive():  # pragma: no cover - unkillable
            self._process.kill()
            self._process.join(timeout=1.0)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        self.exit_code = self._process.exitcode
        self._process.close()
        _LIVE_WORKERS.discard(self)

    def close(self) -> None:
        """Stop the worker deterministically. Idempotent.

        Sends ``close`` and joins; a worker that fails to exit within
        :data:`CLOSE_TIMEOUT` is terminated. A proxy whose stream broke
        (crash / missed deadline) skips the handshake and goes straight
        to the hard path. Safe to call from atexit.
        """
        if self._closed:
            return
        if self._broken:
            self.kill()
            return
        self._closed = True
        try:
            with self._lock:
                self._conn.send(("close", None))
                try:
                    # Bounded ack wait: a wedged worker must not stall
                    # interpreter exit; the join below escalates to
                    # terminate anyway.
                    if self._conn.poll(CLOSE_TIMEOUT):
                        self._conn.recv()
                except EOFError:
                    pass
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=CLOSE_TIMEOUT)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=1.0)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        #: The worker's exit code (0 for a clean shutdown), kept past
        #: the process handle's release.
        self.exit_code = self._process.exitcode
        self._process.close()
        _LIVE_WORKERS.discard(self)
