"""Columnar shared-memory exchange for the process substrate.

Shard worker processes return query results to the coordinator. Small
results travel inline over the worker's pipe (one pickle of the row
list); larger ones move as **dictionary-encoded columnar batches over**
:mod:`multiprocessing.shared_memory` — the stored data is int-coded
(see :mod:`repro.storage.dictionary`), so a result column is typically
a flat ``int64`` vector that crosses the process boundary as one
``memcpy``-style buffer write instead of a per-row pickle graph.

Wire format
-----------
A result of ``nrows`` rows is transposed into per-column vectors. Each
column is packed independently:

* ``i64`` — every cell is a machine-size int: ``array('q')`` bytes,
  fixed ``8 * nrows`` length. The common case for dictionary codes.
* ``pkl`` — anything else (``None`` cells from the RDF layout's sparse
  wide rows, oversized ints, strings): one pickle of the cell list.

The segment payload is the columns' byte strings concatenated; the
*meta* header (sent over the pipe, tiny) records ``nrows`` plus each
column's ``(kind, nbytes)`` so the coordinator can slice the buffer
back apart without scanning it.

Ownership
---------
The **coordinator creates and unlinks every segment**; the worker only
attaches, writes, and closes (see :mod:`repro.storage.process_workers`
for the handshake). Keeping create+unlink in one process means one
``resource_tracker`` registers and unregisters each name — no leaked-
segment warnings at interpreter exit, even under ``pytest -W error``.

``REPRO_SHM_MIN_CELLS`` tunes the inline/shm crossover: results with
fewer than this many cells (rows × columns) stay on the pipe, where
one small pickle beats a segment round-trip.
"""

from __future__ import annotations

import os
import pickle
from array import array
from typing import List, Sequence, Tuple

from repro.obs.metrics import get_registry

#: Environment knob: minimum result cells (rows × columns) before a
#: worker result moves over shared memory instead of inline pickling.
SHM_MIN_CELLS_ENV = "REPRO_SHM_MIN_CELLS"

#: Default inline/shm crossover. Below ~4k cells the pipe pickle is
#: already a few microseconds; the segment handshake only pays off
#: above it.
DEFAULT_SHM_MIN_CELLS = 4096

#: Column kinds: fixed-width int64 vector, or a pickled cell list.
KIND_I64 = "i64"
KIND_PICKLE = "pkl"

#: One packed column: ``(kind, nbytes)``.
ColumnMeta = Tuple[str, int]

#: A packed result: ``(nrows, column metas)``.
ResultMeta = Tuple[int, Tuple[ColumnMeta, ...]]


def shm_min_cells() -> int:
    """The configured inline/shm crossover (``REPRO_SHM_MIN_CELLS``)."""
    raw = os.environ.get(SHM_MIN_CELLS_ENV)
    if raw is None:
        return DEFAULT_SHM_MIN_CELLS
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SHM_MIN_CELLS


def should_inline(nrows: int, ncols: int, min_cells: int) -> bool:
    """Whether a result is small enough to stay on the pipe."""
    return nrows * ncols < max(1, min_cells)


def _pack_column(cells: Sequence) -> Tuple[str, bytes]:
    """Pack one column: ``i64`` vector when possible, else pickle."""
    try:
        return KIND_I64, array("q", cells).tobytes()
    except (TypeError, ValueError, OverflowError):
        return KIND_PICKLE, pickle.dumps(
            list(cells), protocol=pickle.HIGHEST_PROTOCOL
        )


def pack_columns(
    nrows: int, columns: Sequence[Sequence]
) -> Tuple[ResultMeta, bytes]:
    """Pack already-transposed column vectors into the wire format.

    Returns ``(meta, payload)`` where *meta* travels over the pipe and
    *payload* is the bytes the worker writes into the coordinator's
    segment.
    """
    metas: List[ColumnMeta] = []
    parts: List[bytes] = []
    for cells in columns:
        kind, blob = _pack_column(cells)
        metas.append((kind, len(blob)))
        parts.append(blob)
    payload = b"".join(parts)
    registry = get_registry()
    registry.inc("repro.shm.pack.calls")
    registry.inc("repro.shm.pack.bytes", len(payload))
    return (nrows, tuple(metas)), payload


def pack_rows(rows: Sequence[Tuple]) -> Tuple[ResultMeta, bytes]:
    """Transpose *rows* into the columnar wire format (see
    :func:`pack_columns`). *rows* must be non-empty and rectangular
    (SQL results are)."""
    return pack_columns(len(rows), list(zip(*rows)))


def unpack_rows(buffer, meta: ResultMeta) -> List[Tuple]:
    """Rebuild row tuples from a packed payload.

    *buffer* is any bytes-like (a ``SharedMemory.buf`` memoryview or a
    ``bytes`` copy); cells are copied out, so the caller may unlink the
    segment as soon as this returns.
    """
    nrows, column_metas = meta
    columns: List[Sequence] = []
    offset = 0
    for kind, nbytes in column_metas:
        blob = bytes(buffer[offset : offset + nbytes])
        offset += nbytes
        if kind == KIND_I64:
            vector = array("q")
            vector.frombytes(blob)
            cells: Sequence = vector.tolist()
        else:
            cells = pickle.loads(blob)
        if len(cells) != nrows:
            raise ValueError(
                f"corrupt shm column: {len(cells)} cells for {nrows} rows"
            )
        columns.append(cells)
    registry = get_registry()
    registry.inc("repro.shm.unpack.calls")
    registry.inc("repro.shm.unpack.rows", nrows)
    return list(zip(*columns))
