"""Worker supervision for the process substrate: respawn, rebuild,
verify, degrade.

PR 6's forked shard workers made the sharded backend fast but fragile:
one OOM-killed or wedged worker turned every query into a raw
``EOFError`` or an infinite ``conn.recv``. This module wraps each
:class:`~repro.storage.process_workers.ProcessShardWorker` in a
:class:`SupervisedShardWorker` that keeps the shard *correct* through
worker death:

* **Detection** — every RPC failure is classified by the proxy
  (:class:`~repro.storage.process_workers.WorkerCrashedError` /
  :class:`~repro.storage.process_workers.WorkerTimeoutError`, both of
  which mean the stream is desynchronized and the worker must be
  recycled, vs :class:`~repro.faults.TransientWorkerFault`, which is
  retryable in place); additionally the :class:`ShardSupervisor`'s
  monitor thread polls process sentinels so an *idle* worker's death is
  healed off the query path.
* **Rebuild** — the coordinator keeps each shard's :class:`ShardState`:
  an epoch-tagged base snapshot (the shard's ``LayoutData`` slice,
  folded) plus a bounded write log (``REPRO_WRITE_LOG``; overflow folds
  oldest-first into the base, so memory stays bounded and the epoch
  counter never lies). A respawned worker is loaded from the base,
  replays the log, and must pass **epoch/row-count verification**
  (per-table cardinalities vs the folded expectation) before it rejoins
  routing.
* **Retry** — idempotent commands (execute / stats / cost / explain)
  retry with deterministic exponential backoff
  (:class:`~repro.engine.parallel.Backoff`). Writes are
  **replay-safe**: a write is recorded into the shard state only after
  the worker acknowledged it, so a crash mid-write rebuilds the worker
  to the *pre-write* epoch and re-applies the write exactly once —
  partial application inside the dead worker is discarded wholesale.
* **Degradation** — after ``REPRO_WORKER_RESTARTS`` consecutive respawn
  failures the shard's circuit breaker trips OPEN: its work executes
  **in-coordinator** on a fallback child built from the folded shard
  state (identical answers, a WARNING and metrics record the
  degradation). Every ``probe_after_ops`` operations a half-open probe
  attempts one respawn; success closes the circuit and drops the
  fallback.

Deadlines from the serving layer (:func:`repro.serving.concurrency.
current_deadline`) cap each execute RPC at ``min(rpc_timeout,
remaining)`` and surface as :class:`~repro.serving.concurrency.
QueryTimeoutError` once blown, so shard RPCs never outlive the query
that issued them by more than one poll interval.

The chaos suite (``tests/test_fault_tolerance.py``) drives all of this
with the deterministic fault harness in :mod:`repro.faults`; see
``docs/ROBUSTNESS.md`` for the failure model and cookbook.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.engine.parallel import Backoff
from repro.faults import FaultInjector, TransientWorkerFault
from repro.lifecycle import interpreter_exiting
from repro.obs.metrics import get_registry
from repro.obs.trace import current_span
from repro.serving.concurrency import QueryTimeoutError
from repro.storage.base import Backend, BulkLoader, Row
from repro.storage.layouts import LayoutData, TableSpec
from repro.storage.process_workers import (
    ProcessShardWorker,
    WorkerCrashedError,
    WorkerError,
    WorkerTimeoutError,
    rpc_timeout_seconds,
)

logger = logging.getLogger("repro.supervisor")

#: Environment knob: supervision on the process substrate (default on;
#: ``0`` / ``false`` / ``off`` / ``no`` fall back to raw workers).
SUPERVISE_ENV = "REPRO_SUPERVISE"

#: Environment knob: K — consecutive respawn failures before a shard's
#: circuit breaker trips and the shard degrades to in-coordinator
#: execution.
RESTARTS_ENV = "REPRO_WORKER_RESTARTS"

#: Environment knob: bound on the per-shard write log; older entries
#: fold into the base snapshot.
WRITE_LOG_ENV = "REPRO_WRITE_LOG"


def supervision_enabled() -> bool:
    """Whether ``REPRO_SUPERVISE`` leaves supervision on (the default)."""
    raw = os.environ.get(SUPERVISE_ENV, "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


class WorkerRespawnError(WorkerError):
    """A respawn attempt failed (spawn error, rebuild error, or the
    post-rebuild epoch/row-count verification rejected the worker)."""


@dataclass(frozen=True)
class SupervisionConfig:
    """Tunables for one backend's supervision layer.

    ``rpc_timeout_s=None`` resolves from ``REPRO_RPC_TIMEOUT_MS`` at
    use; a non-positive value disables RPC deadlines.
    """

    rpc_timeout_s: Optional[float] = None
    #: K — consecutive respawn failures before the circuit trips.
    max_respawns: int = 3
    #: Bounded retries per failing RPC (idempotent reads and writes).
    max_rpc_retries: int = 2
    #: Write-log bound; overflow folds into the base snapshot.
    max_write_log: int = 256
    backoff_initial_s: float = 0.05
    backoff_cap_s: float = 1.0
    #: Operations on an OPEN circuit between half-open recovery probes.
    probe_after_ops: int = 8
    #: Whether the supervisor runs its sentinel-polling monitor thread
    #: (eager healing of idle workers; chaos tests that need a strictly
    #: deterministic respawn schedule turn it off).
    monitor: bool = True
    monitor_interval_s: float = 0.25

    @classmethod
    def from_env(cls) -> "SupervisionConfig":
        """The environment-configured supervision tunables."""
        return cls(
            rpc_timeout_s=rpc_timeout_seconds(),
            max_respawns=_env_int(RESTARTS_ENV, 3),
            max_write_log=_env_int(WRITE_LOG_ENV, 256),
        )


class _TableState:
    """One table's slice of a shard's base snapshot: schema plus an
    insertion-ordered row set (``dict`` keys), mirroring the child
    backends' set-semantics writes so a rebuilt worker's row *order*
    matches what an uninterrupted worker would hold."""

    __slots__ = ("name", "columns", "indexes", "shard_key", "rows")

    def __init__(self, spec: TableSpec) -> None:
        self.name = spec.name
        self.columns = tuple(spec.columns)
        self.indexes = tuple(spec.indexes)
        self.shard_key = spec.shard_key
        self.rows: Dict[Row, None] = dict.fromkeys(
            tuple(row) for row in spec.rows
        )

    def copy(self) -> "_TableState":
        """A row-level copy (spec fields are shared, rows are not)."""
        clone = _TableState.__new__(_TableState)
        clone.name = self.name
        clone.columns = self.columns
        clone.indexes = self.indexes
        clone.shard_key = self.shard_key
        clone.rows = dict(self.rows)
        return clone

    def spec(self) -> TableSpec:
        """This table as a loadable :class:`TableSpec`."""
        return TableSpec(
            name=self.name,
            columns=self.columns,
            rows=list(self.rows),
            indexes=self.indexes,
            shard_key=self.shard_key,
        )


def _apply_entry(tables: Dict[str, _TableState], entry: Tuple) -> None:
    """Fold one write-log *entry* into a base-snapshot table dict,
    reproducing the child backends' write semantics: inserts are
    set-semantics appends, deletes remove present rows, ``apply``
    performs inserts before deletes (the :meth:`repro.storage.base.
    Backend.apply_changes` order)."""
    kind = entry[0]
    if kind == "load":
        for spec in entry[1].tables:
            tables[spec.name.lower()] = _TableState(spec)
    elif kind == "insert":
        rows = tables[entry[1].lower()].rows
        for row in entry[2]:
            rows.setdefault(row, None)
    elif kind == "delete":
        rows = tables[entry[1].lower()].rows
        for row in entry[2]:
            rows.pop(row, None)
    elif kind == "apply":
        for name, new_rows in entry[1].items():
            rows = tables[name.lower()].rows
            for row in new_rows:
                rows.setdefault(row, None)
        for name, dead_rows in entry[2].items():
            rows = tables[name.lower()].rows
            for row in dead_rows:
                rows.pop(row, None)
    else:  # pragma: no cover - log corruption
        raise ValueError(f"unknown shard-state entry {kind!r}")


class ShardState:
    """The coordinator's mirror of one shard's data: an epoch-tagged
    base snapshot plus a bounded write log.

    The **epoch** is ``base_epoch + len(log)`` — every recorded write
    (or load) advances it by one. Keeping recent writes as log entries
    (rather than folding eagerly) lets a rebuild replay them through the
    worker's real write RPCs; the bound (*max_log*) folds overflow
    oldest-first into the base so memory stays proportional to the
    shard's data, not its write history.
    """

    def __init__(self, max_log: int = 256) -> None:
        self.tables: Dict[str, _TableState] = {}
        self.log: Deque[Tuple] = deque()
        self.base_epoch = 0
        self.max_log = max(0, max_log)

    @property
    def epoch(self) -> int:
        """The shard's current data epoch (writes since creation)."""
        return self.base_epoch + len(self.log)

    def record(self, entry: Tuple) -> None:
        """Append one acknowledged write, folding overflow into the
        base."""
        self.log.append(entry)
        while len(self.log) > self.max_log:
            _apply_entry(self.tables, self.log.popleft())
            self.base_epoch += 1

    def snapshot(self) -> LayoutData:
        """The base snapshot as loadable ``LayoutData``."""
        return LayoutData(
            tables=[state.spec() for state in self.tables.values()]
        )

    def entries(self) -> List[Tuple]:
        """The logged writes after the base snapshot, oldest first."""
        return list(self.log)

    def folded_tables(self) -> Dict[str, _TableState]:
        """Base ⊕ log: the shard's *current* tables (fresh copies)."""
        tables = {name: state.copy() for name, state in self.tables.items()}
        for entry in self.log:
            _apply_entry(tables, entry)
        return tables

    def folded_layout(self) -> LayoutData:
        """The shard's current data as loadable ``LayoutData`` (the
        degraded in-coordinator fallback is built from this)."""
        return LayoutData(
            tables=[state.spec() for state in self.folded_tables().values()]
        )

    def expected_counts(self) -> Dict[str, int]:
        """Per-table row counts at the current epoch — what a correctly
        rebuilt worker's catalog cardinalities must report."""
        return {
            state.name: len(state.rows)
            for state in self.folded_tables().values()
        }


class _SupervisedBulkLoader(BulkLoader):
    """Bulk load through a supervised worker, folded into the **base
    snapshot** — never the bounded write log.

    A bulk load is millions of rows; recording it as a log entry would
    make every post-load crash replay the whole dataset through write
    RPCs (and the log bound would fold it anyway, entry by entry). So
    the loader streams into the target's own bulk session while
    mirroring the declared tables coordinator-side, and on finish:
    drains any older log entries into the base (preserving write
    order), installs the mirrored tables as base state, and advances
    ``base_epoch`` by one — the bulk load is a single write, and a
    rebuilt worker reloads it as one snapshot with an **empty** log.

    The session is **replay-safe**: shard state mutates only in
    ``finish``, after the target acknowledged the whole load, so a
    worker death mid-bulk fails the session and the next operation
    rebuilds the worker at the untouched pre-bulk epoch. Locking is
    per-operation (not per-session) so the sharded backend may drive
    sibling shards' sessions from pool threads; a worker recycled
    between operations (monitor heal) surfaces as a failed session,
    never as a half-applied load.
    """

    def __init__(self, supervised: "SupervisedShardWorker") -> None:
        super().__init__(supervised)
        self._pending: Dict[str, _TableState] = {}
        with supervised._lock:
            if supervised._closed:
                raise RuntimeError("SupervisedShardWorker is closed")
            target = supervised._target_locked()
            self._via_worker = target is supervised._worker
            self._generation = supervised._generation
            self._inner = target.bulk_load()

    def _guarded(self, op: Callable[[], object]):
        """Run one inner-session operation under the supervised lock;
        any worker failure (or a recycle since the session opened)
        discards the worker and fails the bulk — state untouched."""
        supervised: "SupervisedShardWorker" = self._backend
        with supervised._lock:
            if supervised._closed:
                raise RuntimeError("SupervisedShardWorker is closed")
            if self._via_worker and (
                supervised._generation != self._generation
                or supervised._worker is None
            ):
                raise WorkerCrashedError(
                    f"shard {supervised.shard} worker was recycled during "
                    "a bulk load; the session cannot continue"
                )
            try:
                return op()
            except (WorkerError, TransientWorkerFault):
                if self._via_worker:
                    supervised._discard_worker_locked()
                raise

    def create_table(self, name, columns, indexes=(), shard_key=None) -> None:
        """Declare one table (mirrored coordinator-side for rebuilds)."""
        super().create_table(name, columns, indexes, shard_key)
        self._pending[name.lower()] = _TableState(
            TableSpec(
                name=name,
                columns=tuple(columns),
                rows=[],
                indexes=tuple(tuple(ix) for ix in indexes),
                shard_key=shard_key,
            )
        )
        self._guarded(
            lambda: self._inner.create_table(name, columns, indexes, shard_key)
        )

    def _append(self, table: str, rows: List[Row]) -> None:
        mirror = self._pending[table.lower()].rows
        for row in rows:
            mirror.setdefault(row, None)
        self._guarded(lambda: self._inner.append(table, rows))

    def _finish(self) -> None:
        supervised: "SupervisedShardWorker" = self._backend

        def commit():
            self._inner.finish()
            if self._via_worker:
                # The load's one statistics build doubles as the
                # rebuild-style verification: the worker's cardinality
                # per table must match the coordinator mirror.
                expected = {
                    state.name: len(state.rows)
                    for state in self._pending.values()
                }
                stats = supervised._worker.statistics_many(list(expected))
                for name, count in expected.items():
                    cardinality = getattr(
                        stats.get(name), "cardinality", None
                    )
                    if cardinality is not None and cardinality != count:
                        supervised._discard_worker_locked()
                        raise WorkerRespawnError(
                            f"bulk load verification failed (shard "
                            f"{supervised.shard}): table {name!r} holds "
                            f"{cardinality} rows, expected {count}"
                        )
            # Fold: drain older writes into the base in order, then
            # install the bulk tables; the whole load is one epoch step.
            state = supervised._state
            while state.log:
                _apply_entry(state.tables, state.log.popleft())
                state.base_epoch += 1
            for name, table_state in self._pending.items():
                state.tables[name] = table_state
            state.base_epoch += 1

        self._guarded(commit)

    def _abort(self) -> None:
        supervised: "SupervisedShardWorker" = self._backend
        with supervised._lock:
            if self._via_worker:
                # The worker's tables are in an undefined mid-load
                # state; discard it and let the normal respawn path
                # rebuild the untouched pre-bulk state on demand.
                if (
                    supervised._generation == self._generation
                    and supervised._worker is not None
                ):
                    supervised._discard_worker_locked()
            else:
                try:
                    self._inner.abort()
                except Exception:  # pragma: no cover - best effort
                    pass
                if supervised._fallback is not None:
                    supervised._fallback.close()
                    supervised._fallback = None


class SupervisedShardWorker(Backend):
    """One shard's fault-tolerant worker: a live
    :class:`ProcessShardWorker` plus the state to replace it.

    Presents the same duck surface the sharded backend expects from a
    raw worker (``execute_traced``, ``statistics_many``, transport
    counters, ``db``), so supervision is invisible to routing and merge
    semantics. All telemetry counters (``restarts``, ``rpc_retries``,
    ``deadline_exceeded``, ``circuit_trips``, ``circuit_recoveries``,
    ``degraded_executions``, shm/inline transport counts) accumulate
    across worker generations.
    """

    #: ``ShardedBackend.execute`` threads the serving deadline into
    #: children advertising this.
    supports_deadline = True

    def __init__(
        self,
        factory: Callable[[], Backend],
        shard: int = 0,
        config: Optional[SupervisionConfig] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self._factory = factory
        self.shard = shard
        self._config = config or SupervisionConfig.from_env()
        self._injector = injector
        raw_timeout = self._config.rpc_timeout_s
        #: The resolved per-RPC deadline (``None`` = disabled).
        self._rpc_timeout = (
            rpc_timeout_seconds()
            if raw_timeout is None
            else (raw_timeout if raw_timeout > 0 else None)
        )
        self._lock = threading.RLock()
        self._state = ShardState(max_log=self._config.max_write_log)
        self._backoff = Backoff(
            initial=self._config.backoff_initial_s,
            cap=self._config.backoff_cap_s,
        )
        self._sleeper: Callable[[float], None] = time.sleep
        self._generation = 0
        self._circuit_open = False
        self._ops_since_trip = 0
        self._closed = False
        self._fallback: Optional[Backend] = None
        # Telemetry accumulated across worker generations.
        self.restarts = 0
        self.rpc_retries = 0
        self.deadline_exceeded = 0
        self.circuit_trips = 0
        self.circuit_recoveries = 0
        self.degraded_executions = 0
        self._prior_shm_results = 0
        self._prior_shm_bytes = 0
        self._prior_inline_results = 0
        self.last_execution = None
        self.exit_code: Optional[int] = None
        # Initial spawn failures propagate: a broken child factory is a
        # configuration error, not an outage to be supervised around.
        self._worker: Optional[ProcessShardWorker] = self._spawn_locked(0)
        self.name = self._worker.name

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    @property
    def circuit_open(self) -> bool:
        """Whether this shard is degraded to in-coordinator execution."""
        return self._circuit_open

    @property
    def worker(self) -> Optional[ProcessShardWorker]:
        """The live worker proxy (``None`` while degraded/dead)."""
        return self._worker

    @property
    def epoch(self) -> int:
        """The shard's current data epoch."""
        return self._state.epoch

    @property
    def shm_results(self) -> int:
        """Shm-transport results across all worker generations."""
        worker = self._worker
        return self._prior_shm_results + (worker.shm_results if worker else 0)

    @property
    def shm_bytes(self) -> int:
        """Shm-transport bytes across all worker generations."""
        worker = self._worker
        return self._prior_shm_bytes + (worker.shm_bytes if worker else 0)

    @property
    def inline_results(self) -> int:
        """Inline-transport results across all worker generations."""
        worker = self._worker
        return self._prior_inline_results + (
            worker.inline_results if worker else 0
        )

    def _spawn_locked(self, generation: int) -> ProcessShardWorker:
        injector = self._injector
        if (
            generation > 0
            and injector is not None
            and injector.take_spawn_fail(self.shard)
        ):
            raise WorkerRespawnError(
                f"injected respawn failure (shard {self.shard})"
            )
        fault_config = (
            injector.worker_config(self.shard, generation)
            if injector is not None
            else None
        )
        return ProcessShardWorker(
            self._factory,
            self.shard,
            rpc_timeout=self._rpc_timeout,
            fault_config=fault_config,
        )

    def _discard_worker_locked(self) -> None:
        worker = self._worker
        self._worker = None
        if worker is None:
            return
        self._prior_shm_results += worker.shm_results
        self._prior_shm_bytes += worker.shm_bytes
        self._prior_inline_results += worker.inline_results
        worker.kill()

    def _rebuild_locked(self, worker: ProcessShardWorker) -> None:
        """Load the base snapshot, replay the write log through real
        write RPCs, then verify the result (raises
        :class:`WorkerRespawnError` on divergence)."""
        snapshot = self._state.snapshot()
        if snapshot.tables:
            worker.load(snapshot)
        for entry in self._state.entries():
            kind = entry[0]
            if kind == "load":
                worker.load(entry[1])
            elif kind == "insert":
                worker.insert_rows(entry[1], list(entry[2]))
            elif kind == "delete":
                worker.delete_rows(entry[1], list(entry[2]))
            elif kind == "apply":
                worker.apply_changes(
                    {name: list(rows) for name, rows in entry[1].items()},
                    {name: list(rows) for name, rows in entry[2].items()},
                )
        self._verify_locked(worker)

    def _verify_locked(self, worker: ProcessShardWorker) -> None:
        expected = self._state.expected_counts()
        if not expected:
            return
        stats = worker.statistics_many(list(expected))
        for name, count in expected.items():
            table_stats = stats.get(name)
            cardinality = getattr(table_stats, "cardinality", None)
            if cardinality is not None and cardinality != count:
                raise WorkerRespawnError(
                    f"rebuild verification failed (shard {self.shard}): "
                    f"table {name!r} holds {cardinality} rows where epoch "
                    f"{self._state.epoch} expects {count}"
                )

    def _respawn_cycle_locked(self, reason: str = "death") -> bool:
        """Up to K spawn+rebuild+verify attempts with backoff; trips the
        circuit breaker (and returns ``False``) when all fail."""
        if interpreter_exiting():
            # Never fork during interpreter exit: a fresh worker would
            # die in the dying runtime and re-enter this cycle, keeping
            # the exit hook's untimed join from draining. Trip straight
            # to degraded in-coordinator execution instead.
            self._trip_circuit_locked()
            return False
        registry = get_registry()
        parent = current_span()
        for attempt in range(self._config.max_respawns):
            with parent.child(
                "worker.respawn",
                shard=self.shard,
                reason=reason,
                attempt=attempt,
            ) as span:
                worker = None
                try:
                    worker = self._spawn_locked(self._generation + 1)
                    self._rebuild_locked(worker)
                except Exception as exc:
                    if worker is not None:
                        worker.kill()
                    span.set(outcome="failed", error=type(exc).__name__)
                    registry.inc("repro.worker.respawn.failures")
                    logger.warning(
                        "shard %d respawn attempt %d/%d failed: %s",
                        self.shard,
                        attempt + 1,
                        self._config.max_respawns,
                        exc,
                    )
                    self._backoff.sleep(attempt, self._sleeper)
                    continue
                self._adopt_worker_locked(worker, span)
                return True
        self._trip_circuit_locked()
        return False

    def _adopt_worker_locked(self, worker: ProcessShardWorker, span) -> None:
        self._generation += 1
        self._worker = worker
        self.restarts += 1
        get_registry().inc("repro.worker.restarts")
        span.set(outcome="respawned", epoch=self._state.epoch)
        logger.warning(
            "shard %d worker respawned at epoch %d (generation %d)",
            self.shard,
            self._state.epoch,
            self._generation,
        )

    def _trip_circuit_locked(self) -> None:
        self._circuit_open = True
        self._ops_since_trip = 0
        self.circuit_trips += 1
        registry = get_registry()
        registry.inc("repro.circuit.trips")
        registry.set_gauge(f"repro.circuit.open.shard{self.shard}", 1.0)
        logger.warning(
            "shard %d circuit breaker OPEN after %d consecutive respawn "
            "failures; executing in-coordinator (degraded)",
            self.shard,
            self._config.max_respawns,
        )

    def _probe_locked(self) -> bool:
        """One half-open recovery attempt on an OPEN circuit."""
        if interpreter_exiting():
            return False
        registry = get_registry()
        with current_span().child(
            "worker.respawn", shard=self.shard, reason="probe"
        ) as span:
            worker = None
            try:
                worker = self._spawn_locked(self._generation + 1)
                self._rebuild_locked(worker)
            except Exception as exc:
                if worker is not None:
                    worker.kill()
                span.set(outcome="failed", error=type(exc).__name__)
                registry.inc("repro.worker.respawn.failures")
                logger.info(
                    "shard %d half-open probe failed: %s", self.shard, exc
                )
                return False
            self._adopt_worker_locked(worker, span)
        self._circuit_open = False
        self.circuit_recoveries += 1
        registry.inc("repro.circuit.recoveries")
        registry.set_gauge(f"repro.circuit.open.shard{self.shard}", 0.0)
        logger.warning(
            "shard %d circuit breaker CLOSED: worker recovered at epoch %d",
            self.shard,
            self._state.epoch,
        )
        if self._fallback is not None:
            self._fallback.close()
            self._fallback = None
        return True

    def _ensure_fallback_locked(self) -> Backend:
        if self._fallback is None:
            backend = self._factory()
            data = self._state.folded_layout()
            if data.tables:
                backend.load(data)
            self._fallback = backend
        return self._fallback

    def _target_locked(self) -> Backend:
        """The backend to run the next operation on: the live worker,
        a freshly respawned one, or the degraded fallback."""
        worker = self._worker
        if worker is not None and worker.is_alive():
            return worker
        if worker is not None:
            self._discard_worker_locked()
        if self._circuit_open:
            self._ops_since_trip += 1
            if self._ops_since_trip >= self._config.probe_after_ops:
                self._ops_since_trip = 0
                if self._probe_locked():
                    return self._worker
            return self._ensure_fallback_locked()
        if self._respawn_cycle_locked():
            return self._worker
        return self._ensure_fallback_locked()

    # ------------------------------------------------------------------
    # RPC wrappers
    # ------------------------------------------------------------------
    def _check_deadline(self, deadline: Optional[Tuple[float, float]]) -> None:
        if deadline is not None and deadline[0] - time.monotonic() <= 0:
            raise QueryTimeoutError(deadline[1])

    def _effective_timeout(
        self, deadline: Optional[Tuple[float, float]]
    ) -> Optional[float]:
        timeout = self._rpc_timeout
        if deadline is not None:
            remaining = deadline[0] - time.monotonic()
            timeout = remaining if timeout is None else min(timeout, remaining)
        return timeout

    def _count_retry(self) -> None:
        self.rpc_retries += 1
        get_registry().inc("repro.rpc.retries")

    def _read(
        self,
        attempt: Callable[[ProcessShardWorker, Optional[float]], object],
        fallback: Callable[[Backend], object],
        deadline: Optional[Tuple[float, float]] = None,
    ):
        """Run one idempotent command with retries: transient faults
        retry in place with backoff; crashes and missed deadlines
        recycle the worker first. Fail-fast on a blown serving
        deadline."""
        if self._closed:
            raise RuntimeError("SupervisedShardWorker is closed")
        with self._lock:
            transient = 0
            failures = 0
            while True:
                self._check_deadline(deadline)
                target = self._target_locked()
                if target is not self._worker:
                    return fallback(target)
                timeout = self._effective_timeout(deadline)
                try:
                    return attempt(target, timeout)
                except TransientWorkerFault:
                    transient += 1
                    if transient > self._config.max_rpc_retries:
                        raise
                    self._count_retry()
                    self._backoff.sleep(transient - 1, self._sleeper)
                except WorkerTimeoutError:
                    self.deadline_exceeded += 1
                    get_registry().inc("repro.rpc.deadline_exceeded")
                    self._discard_worker_locked()
                    if (
                        deadline is not None
                        and deadline[0] - time.monotonic() <= 0
                    ):
                        raise QueryTimeoutError(deadline[1])
                    failures += 1
                    if failures > self._config.max_rpc_retries:
                        raise
                    self._count_retry()
                except WorkerCrashedError:
                    self._discard_worker_locked()
                    failures += 1
                    if failures > self._config.max_rpc_retries:
                        raise
                    self._count_retry()

    def _write(
        self,
        entry: Tuple,
        attempt: Callable[[ProcessShardWorker], object],
        fallback: Callable[[Backend], object],
    ):
        """Run one write with replay-safe acknowledgment: the write is
        recorded into the shard state only after the target applied it,
        so a crash mid-write rebuilds the worker to the pre-write epoch
        and re-applies exactly once (partial application inside the dead
        worker is discarded wholesale by the rebuild)."""
        if self._closed:
            raise RuntimeError("SupervisedShardWorker is closed")
        with self._lock:
            failures = 0
            while True:
                target = self._target_locked()
                if target is not self._worker:
                    result = fallback(target)
                    self._state.record(entry)
                    return result
                try:
                    result = attempt(target)
                except (TransientWorkerFault, WorkerError) as exc:
                    # A failed write leaves the worker's applied state
                    # unknown (even a "transient" error may have landed
                    # after a partial multi-table apply) — recycle and
                    # rebuild rather than guess.
                    if isinstance(exc, WorkerTimeoutError):
                        self.deadline_exceeded += 1
                        get_registry().inc("repro.rpc.deadline_exceeded")
                    self._discard_worker_locked()
                    failures += 1
                    if failures > self._config.max_rpc_retries:
                        raise
                    self._count_retry()
                    continue
                self._state.record(entry)
                return result

    # ------------------------------------------------------------------
    # Backend surface
    # ------------------------------------------------------------------
    def load(self, data: LayoutData) -> None:
        """Load the shard's layout slice (recorded for rebuilds)."""
        self._write(
            ("load", data),
            lambda worker: worker.load(data),
            lambda backend: backend.load(data),
        )

    def bulk_load(self) -> BulkLoader:
        """A bulk-ingest session that folds into the base snapshot (not
        the write log), so a post-load crash rebuilds from one snapshot
        instead of replaying millions of rows."""
        return _SupervisedBulkLoader(self)

    def insert_rows(self, table: str, rows: List[Row]) -> None:
        """Insert rows (set semantics), replay-safe on worker death."""
        frozen = tuple(tuple(row) for row in rows)
        self._write(
            ("insert", table, frozen),
            lambda worker: worker.insert_rows(table, list(frozen)),
            lambda backend: backend.insert_rows(table, list(frozen)),
        )

    def delete_rows(self, table: str, rows: List[Row]) -> int:
        """Delete rows; the removed count always comes from a backend
        that applied the delete exactly once (rebuild restores the
        pre-delete epoch before any retry)."""
        frozen = tuple(tuple(row) for row in rows)
        return self._write(
            ("delete", table, frozen),
            lambda worker: worker.delete_rows(table, list(frozen)),
            lambda backend: backend.delete_rows(table, list(frozen)),
        )

    def apply_changes(self, inserts, deletes) -> None:
        """Apply a multi-table delta, replay-safe on worker death."""
        frozen_inserts = {
            name: tuple(tuple(row) for row in rows)
            for name, rows in inserts.items()
        }
        frozen_deletes = {
            name: tuple(tuple(row) for row in rows)
            for name, rows in deletes.items()
        }
        self._write(
            ("apply", frozen_inserts, frozen_deletes),
            lambda worker: worker.apply_changes(inserts, deletes),
            lambda backend: backend.apply_changes(inserts, deletes),
        )

    def execute(
        self,
        sql: str,
        deadline: Optional[Tuple[float, float]] = None,
    ) -> List[Row]:
        """Evaluate *sql* with supervision (respawn/retry/degrade);
        *deadline* is the serving layer's ``(expiry, budget)`` pair."""
        rows, _span = self._execute("execute", sql, deadline)
        return rows

    def execute_traced(
        self,
        sql: str,
        deadline: Optional[Tuple[float, float]] = None,
    ) -> Tuple[List[Row], Optional[Dict]]:
        """Evaluate *sql* with a worker-local trace (``None`` span dict
        on the degraded in-coordinator path)."""
        return self._execute("execute_traced", sql, deadline)

    def _execute(
        self,
        cmd: str,
        sql: str,
        deadline: Optional[Tuple[float, float]],
    ) -> Tuple[List[Row], Optional[Dict]]:
        traced = cmd == "execute_traced"

        def attempt(worker: ProcessShardWorker, timeout: Optional[float]):
            if traced:
                rows, span = worker.execute_traced(sql, timeout=timeout)
            else:
                rows, span = worker.execute(sql, timeout=timeout), None
            self.last_execution = worker.last_execution
            return rows, span

        def fallback(backend: Backend):
            rows = backend.execute(sql)
            self.last_execution = getattr(backend, "last_execution", None)
            self.degraded_executions += 1
            get_registry().inc("repro.worker.degraded.executions")
            return rows, None

        return self._read(attempt, fallback, deadline)

    def estimated_cost(self, sql: str) -> float:
        """The shard's own cost estimate (idempotent, retried)."""
        return self._read(
            lambda worker, _timeout: worker.estimated_cost(sql),
            lambda backend: backend.estimated_cost(sql),
        )

    def explain_text(self, sql: str, analyze: bool = False) -> str:
        """The shard's EXPLAIN rendering (idempotent, retried)."""

        def fallback(backend: Backend) -> str:
            explain = getattr(backend, "explain_text", None)
            return "" if explain is None else explain(sql, analyze=analyze)

        return self._read(
            lambda worker, _timeout: worker.explain_text(sql, analyze),
            fallback,
        )

    def table_statistics(self, table: str):
        """The shard's catalog statistics for one table."""
        return self._read(
            lambda worker, _timeout: worker.table_statistics(table),
            lambda backend: backend.table_statistics(table),
        )

    def statistics_many(self, tables) -> Dict[str, object]:
        """Statistics for many tables in one (supervised) round-trip."""
        names = list(tables)
        return self._read(
            lambda worker, _timeout: worker.statistics_many(names),
            lambda backend: {
                name: backend.table_statistics(name) for name in names
            },
        )

    @property
    def db(self):
        """The hosted engine's configuration snapshot (live worker or
        degraded fallback)."""
        return self._read(
            lambda worker, _timeout: worker.db,
            lambda backend: getattr(backend, "db", None),
        )

    def metrics_snapshot(self) -> Optional[Dict]:
        """The live worker's registry snapshot; ``None`` while degraded
        or dead (metrics reads never trigger a respawn)."""
        with self._lock:
            worker = self._worker
            if self._closed or worker is None or not worker.is_alive():
                return None
            try:
                return worker.metrics_snapshot()
            except (WorkerError, TransientWorkerFault):
                return None

    # ------------------------------------------------------------------
    # Monitor hooks
    # ------------------------------------------------------------------
    def live_sentinel(self) -> Optional[int]:
        """The live worker's process sentinel for death polling, or
        ``None`` (dead, degraded, closed, or momentarily busy —
        non-blocking by design: the monitor must never queue behind a
        long RPC)."""
        if self._closed or not self._lock.acquire(blocking=False):
            return None
        try:
            worker = self._worker
            if worker is not None and worker.is_alive():
                try:
                    return worker.sentinel
                except ValueError:  # pragma: no cover - process released
                    return None
            return None
        finally:
            self._lock.release()

    def heal(self) -> bool:
        """Monitor-thread entry: respawn a dead worker off the query
        path. Non-blocking (skips a busy shard); returns whether a
        respawn happened."""
        if self._closed or not self._lock.acquire(blocking=False):
            return False
        try:
            if self._closed or self._circuit_open:
                return False
            worker = self._worker
            if worker is not None and worker.is_alive():
                return False
            if worker is not None:
                self._discard_worker_locked()
            return self._respawn_cycle_locked(reason="monitor")
        finally:
            self._lock.release()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker (graceful handshake when the stream is
        healthy) and the fallback. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
            self._worker = None
            if worker is not None:
                self._prior_shm_results += worker.shm_results
                self._prior_shm_bytes += worker.shm_bytes
                self._prior_inline_results += worker.inline_results
                worker.close()
                self.exit_code = getattr(worker, "exit_code", None)
            if self._fallback is not None:
                self._fallback.close()
                self._fallback = None


class ShardSupervisor:
    """All of one backend's supervised workers plus the monitor thread.

    The monitor waits on live worker sentinels
    (``multiprocessing.connection.wait``), so a worker death wakes it
    immediately and the shard is healed *before* the next query pays
    respawn latency; the interval bound keeps it responsive to shutdown
    and to workers it could not inspect while busy.
    """

    def __init__(
        self,
        factory: Callable[[], Backend],
        shards: int,
        config: Optional[SupervisionConfig] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config or SupervisionConfig.from_env()
        self.injector = injector
        self.workers = [
            SupervisedShardWorker(factory, shard, self.config, injector)
            for shard in range(shards)
        ]
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if self.config.monitor:
            self._thread = threading.Thread(
                target=self._run, name="repro-supervisor", daemon=True
            )
            self._thread.start()

    def _run(self) -> None:
        from multiprocessing.connection import wait

        interval = self.config.monitor_interval_s
        while not self._stop.is_set():
            sentinels = []
            for worker in self.workers:
                sentinel = worker.live_sentinel()
                if sentinel is not None:
                    sentinels.append(sentinel)
                else:
                    # No sentinel: the shard is busy, degraded, closed —
                    # or its worker died while we were not blocked in
                    # wait() below (in which case it would never become
                    # "ready"). heal() is non-blocking and a cheap no-op
                    # in every state except a dead, healable worker.
                    worker.heal()
            if self._stop.is_set():
                break
            if not sentinels:
                self._stop.wait(interval)
                continue
            try:
                ready = wait(sentinels, timeout=interval)
            except OSError:  # pragma: no cover - sentinel raced a close
                ready = []
            if self._stop.is_set():
                break
            if ready:
                for worker in self.workers:
                    worker.heal()

    def telemetry(self) -> Dict[str, int]:
        """Aggregate supervision counters across the shards."""
        return {
            "worker_restarts": sum(w.restarts for w in self.workers),
            "rpc_retries": sum(w.rpc_retries for w in self.workers),
            "rpc_deadline_exceeded": sum(
                w.deadline_exceeded for w in self.workers
            ),
            "circuit_trips": sum(w.circuit_trips for w in self.workers),
            "circuit_recoveries": sum(
                w.circuit_recoveries for w in self.workers
            ),
            "circuit_open_shards": sum(
                1 for w in self.workers if w.circuit_open
            ),
            "degraded_executions": sum(
                w.degraded_executions for w in self.workers
            ),
        }

    def close(self) -> None:
        """Stop the monitor, then every supervised worker. Idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2 * self.config.monitor_interval_s + 5.0)
            self._thread = None
        for worker in self.workers:
            worker.close()
