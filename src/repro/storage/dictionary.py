"""Dictionary encoding: constants to dense integers and back."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class Dictionary:
    """A bidirectional mapping ``constant <-> integer code``.

    Codes are assigned densely in first-seen order, so the encoding is
    deterministic for a deterministic fact stream (the benchmark generator
    is seeded).
    """

    def __init__(self) -> None:
        self._code_of: Dict[str, int] = {}
        self._value_of: List[str] = []

    def encode(self, value: str) -> int:
        """The code of *value*, allocating one if unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._value_of)
            self._code_of[value] = code
            self._value_of.append(value)
        return code

    def encode_many(self, values: Iterable[str]) -> List[int]:
        """Encode a sequence of values."""
        return [self.encode(v) for v in values]

    def try_encode(self, value: str) -> Optional[int]:
        """The code of *value*, or None when it was never encoded.

        Query constants that do not occur in the data have no code; the
        translator turns them into an always-false predicate.
        """
        return self._code_of.get(value)

    def decode(self, code: int) -> str:
        """The constant for *code* (raises IndexError on unknown codes)."""
        return self._value_of[code]

    def decode_row(self, row: Tuple) -> Tuple:
        """Decode every integer in a result row."""
        return tuple(
            self._value_of[v] if isinstance(v, int) and 0 <= v < len(self._value_of) else v
            for v in row
        )

    def __len__(self) -> int:
        return len(self._value_of)

    def __contains__(self, value: str) -> bool:
        return value in self._code_of
