"""Epoch-tagged delta shipping for read replicas.

The write path of :class:`~repro.obda.system.OBDASystem` advances a
monotonic **data epoch** on every write; this module gives those writes
a durable, shippable form so N read-only replica backends can follow
the primary asynchronously:

* :class:`EpochDelta` — one write's effect, tagged with the epoch the
  primary reached by applying it: tables created by the write, rows
  inserted and rows deleted (dictionary-encoded, grouped per table) —
  exactly the payloads :meth:`repro.storage.base.Backend.apply_changes`
  takes, so applying a delta to a replica is one atomic backend call.
* :class:`ReplicationLog` — the primary-side changelog: a bounded log
  of recent deltas over an epoch-tagged **base snapshot**, deliberately
  the same shape as the supervised shard state of PR 8
  (:class:`~repro.storage.supervisor.ShardState`: base ``LayoutData`` +
  bounded write log, overflow folded oldest-first into the base). The
  fold itself reuses the supervisor's write-log entry semantics
  (``load`` + ``apply`` entries via the same applier), so a replica
  bootstrapped from :meth:`ReplicationLog.snapshot` and caught up from
  :meth:`ReplicationLog.deltas_since` holds byte-identical tables to a
  replica that replayed every write since epoch zero.

A replica that has fallen behind the bounded log's tail (its epoch
predates the folded base) cannot catch up incrementally —
:meth:`deltas_since` returns ``None`` and the replica set re-bootstraps
it from the current folded snapshot instead, the same base-snapshot
rebuild a crashed supervised worker gets.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.storage.layouts import LayoutData, TableSpec
from repro.storage.supervisor import _apply_entry, _TableState


@dataclass(frozen=True)
class EpochDelta:
    """One write's shippable effect, tagged with its resulting epoch."""

    #: The data epoch the primary reached by applying this delta.
    epoch: int
    #: Tables the write created (empty specs; new predicates outside
    #: the loaded schema). Replicas must create them before applying.
    new_tables: Tuple[TableSpec, ...] = ()
    #: Rows inserted, dictionary-encoded, grouped per backend table.
    inserts: Dict[str, List[Tuple]] = field(default_factory=dict)
    #: Rows deleted, same grouping.
    deletes: Dict[str, List[Tuple]] = field(default_factory=dict)


def apply_delta(backend, delta: EpochDelta) -> None:
    """Apply one delta to a *backend*: create its new tables, then apply
    inserts and deletes as one atomic ``apply_changes`` call (the same
    order the primary's write path used)."""
    if delta.new_tables:
        backend.load(LayoutData(tables=list(delta.new_tables)))
    if delta.inserts or delta.deletes:
        backend.apply_changes(delta.inserts, delta.deletes)


class ReplicationLog:
    """The primary's bounded changelog: base snapshot ⊕ recent deltas.

    Thread-safe: the write path records under the system's exclusive
    barrier, while replica bootstrap/catch-up reads race in from router
    threads. The **epoch** of the folded base plus the logged deltas
    always equals the primary's data epoch after the last recorded
    write (loads and writes both advance it by exactly one).
    """

    def __init__(self, max_log: int = 256) -> None:
        self._lock = threading.Lock()
        self._tables: Dict[str, _TableState] = {}
        self._log: Deque[EpochDelta] = deque()
        self._base_epoch = 0
        self.max_log = max(0, max_log)

    # -- primary side --------------------------------------------------
    def bootstrap(self, data: LayoutData, epoch: int = 0) -> None:
        """Install the primary's initial load as the base snapshot."""
        with self._lock:
            self._tables = {}
            _apply_entry(self._tables, ("load", data))
            self._log.clear()
            self._base_epoch = epoch

    def record(self, delta: EpochDelta) -> None:
        """Append one acknowledged write; fold overflow into the base.

        Deltas must arrive in epoch order (the write path records them
        under its exclusive barrier, which guarantees it).
        """
        with self._lock:
            if delta.epoch != self._epoch_locked() + 1:
                raise ValueError(
                    f"replication log at epoch {self._epoch_locked()} "
                    f"cannot record delta for epoch {delta.epoch}"
                )
            self._log.append(delta)
            while len(self._log) > self.max_log:
                self._fold_one_locked()

    def _fold_one_locked(self) -> None:
        delta = self._log.popleft()
        # Reuse the PR 8 write-log entry applier: a delta folds as one
        # "load" entry per created table followed by one "apply" entry.
        for spec in delta.new_tables:
            _apply_entry(self._tables, ("load", LayoutData(tables=[spec])))
        _apply_entry(self._tables, ("apply", delta.inserts, delta.deletes))
        self._base_epoch = delta.epoch

    def _epoch_locked(self) -> int:
        return self._log[-1].epoch if self._log else self._base_epoch

    @property
    def epoch(self) -> int:
        """The epoch of the newest recorded delta (or the base)."""
        with self._lock:
            return self._epoch_locked()

    # -- replica side --------------------------------------------------
    def snapshot(self) -> Tuple[LayoutData, int]:
        """The fully folded current state as ``(LayoutData, epoch)`` —
        what a fresh (or re-bootstrapped) replica loads."""
        with self._lock:
            tables = {
                name: state.copy() for name, state in self._tables.items()
            }
            for delta in self._log:
                for spec in delta.new_tables:
                    _apply_entry(tables, ("load", LayoutData(tables=[spec])))
                _apply_entry(tables, ("apply", delta.inserts, delta.deletes))
            data = LayoutData(
                tables=[state.spec() for state in tables.values()]
            )
            return data, self._epoch_locked()

    def deltas_since(self, epoch: int) -> Optional[List[EpochDelta]]:
        """The recorded deltas after *epoch*, oldest first — or ``None``
        when *epoch* predates the folded base (the caller must
        re-bootstrap from :meth:`snapshot` instead)."""
        with self._lock:
            if epoch < self._base_epoch:
                return None
            return [delta for delta in self._log if delta.epoch > epoch]
