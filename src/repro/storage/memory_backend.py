"""MiniRDBMS backend — the reproduction's commercial RDBMS (DB2 role).

A thin adapter over :class:`repro.engine.MiniRDBMS`: native cost-based
EXPLAIN (the analogue of ``db2expln``) and DB2's 2,000,000-character
statement limit, which the RDF-layout reformulations of the heaviest
queries exceed, reproducing the paper's §6.3 failures.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

from repro.engine.database import DB2_STATEMENT_LIMIT, MiniRDBMS
from repro.engine.operators import CostParameters, DEFAULT_COSTS
from repro.obs.metrics import get_registry
from repro.storage.base import Backend, BulkLoader, Row
from repro.storage.layouts import LayoutData


class _MemoryBulkLoader(BulkLoader):
    """Deferred-index bulk loader for :class:`MemoryBackend`.

    Appends go straight onto the engine tables' raw row lists
    (:meth:`repro.engine.relation.Table.bulk_append` — no dedup, no
    index maintenance); :meth:`finish` dedups each table once, builds
    the declared indexes over the final rows, and runs one ``analyze``.
    The backend lock is held for the whole session, so no query can
    observe the half-built state.
    """

    def __init__(self, backend: "MemoryBackend") -> None:
        super().__init__(backend)
        self._db = backend.db
        backend._lock.acquire()

    def create_table(self, name, columns, indexes=(), shard_key=None) -> None:
        """Declare (and create empty) one table of the new dataset."""
        super().create_table(name, columns, indexes, shard_key)
        self._db.create_table(name, columns)

    def _append(self, table: str, rows: List[Row]) -> None:
        self._db.catalog.table(table).bulk_append(rows)

    def _finish(self) -> None:
        try:
            for spec in self._specs.values():
                self._db.catalog.table(spec.name).bulk_finish()
                for index_columns in spec.indexes:
                    self._db.create_index(spec.name, index_columns)
            self._db.analyze()
        finally:
            self._backend._lock.release()

    def _abort(self) -> None:
        try:
            for spec in self._specs.values():
                self._db.catalog.drop_table(spec.name)
        finally:
            self._backend._lock.release()


class MemoryBackend(Backend):
    """The from-scratch engine as a loadable backend.

    The engine's tables are plain Python structures, so reads and writes
    serialize behind one lock: a query scanning a table can never observe
    a half-applied write. (Execution is pure Python and GIL-bound, so the
    lock costs ``answer_many`` threads no real parallelism.)
    """

    name = "minirdbms"

    def __init__(
        self,
        max_statement_length: int = DB2_STATEMENT_LIMIT,
        cost_parameters: CostParameters = DEFAULT_COSTS,
        workers: Optional[int] = None,
        substrate: Optional[str] = None,
    ) -> None:
        self.db = MiniRDBMS(
            max_statement_length=max_statement_length,
            cost_parameters=cost_parameters,
            workers=workers,
            substrate=substrate,
        )
        self._lock = threading.RLock()

    def load(self, data: LayoutData) -> None:
        """Create tables and indexes, bulk-load rows, collect statistics."""
        with self._lock:
            for spec in data.tables:
                self.db.create_table(spec.name, spec.columns)
                self.db.insert_many(spec.name, spec.rows)
                for index_columns in spec.indexes:
                    self.db.create_index(spec.name, index_columns)
            self.db.analyze()

    def bulk_load(self) -> BulkLoader:
        """A deferred-index bulk-ingest session on the engine."""
        return _MemoryBulkLoader(self)

    def insert_rows(self, table: str, rows: List[Row]) -> None:
        """Insert encoded rows (set semantics) and fold the delta into
        the statistics instead of paying a full per-batch re-analyze
        (mirrors SQLiteBackend shadow stats; statistics are optimizer
        hints, so approximate distinct counts never affect answers)."""
        with self._lock:
            added = self.db.insert_many(table, rows)
            if added:
                self.db.catalog.adjust_statistics(table, inserted=added)

    def delete_rows(self, table: str, rows: List[Row]) -> int:
        """Delete encoded rows; returns how many were present."""
        with self._lock:
            removed = self.db.delete_many(table, rows)
            if removed:
                self.db.catalog.adjust_statistics(table, removed=removed)
            return removed

    def apply_changes(self, inserts, deletes) -> None:
        """Apply a multi-table write in one critical section, so a
        concurrent read sees all of it or none of it."""
        with self._lock:
            super().apply_changes(inserts, deletes)

    def execute(self, sql: str) -> List[Row]:
        """Evaluate *sql* on the embedded engine; returns result rows."""
        started = time.perf_counter()
        with self._lock:
            rows = self.db.execute(sql)
        registry = get_registry()
        registry.inc("repro.engine.statements")
        registry.observe(
            "repro.engine.execute.seconds", time.perf_counter() - started
        )
        return rows

    def execute_columns(self, sql: str) -> Tuple[int, List[List]]:
        """Evaluate *sql* returning ``(nrows, column vectors)`` — the
        engine's columnar result path (shard worker processes use this
        to feed the shared-memory wire format without row tuples)."""
        started = time.perf_counter()
        with self._lock:
            result = self.db.execute_columns(sql)
        registry = get_registry()
        registry.inc("repro.engine.statements")
        registry.observe(
            "repro.engine.execute.seconds", time.perf_counter() - started
        )
        return result

    def estimated_cost(self, sql: str) -> float:
        """The engine's own EXPLAIN cost estimate for *sql*."""
        with self._lock:
            return self.db.estimated_cost(sql)

    def explain_text(self, sql: str, analyze: bool = False) -> str:
        """The engine's EXPLAIN rendering (plan tree with estimates);
        ``analyze=True`` executes and shows measured vs. estimated
        numbers per node (``EXPLAIN ANALYZE``)."""
        with self._lock:  # planning mutates the shared statement cache
            if analyze:
                return self.db.explain_analyze(sql).text
            return self.db.explain(sql).text

    def table_statistics(self, table: str):
        """The engine's catalog statistics for *table*."""
        with self._lock:
            return self.db.catalog.statistics(table)

    @property
    def last_execution(self):
        """Counters from the most recent execute (benchmark telemetry)."""
        return self.db.last_execution

    def close(self) -> None:
        """Release the engine's worker pool (idempotent)."""
        self.db.close()
