"""Storage: dictionary encoding, layouts, and the two RDBMS backends.

The paper evaluates its reformulations on PostgreSQL and DB2 over two data
layouts. Here:

* :mod:`dictionary` — facts are dictionary-encoded into integers before
  storage, "as customary in efficient Semantic Web data management
  systems" (§6.1);
* :mod:`layouts` — the **simple layout** (one unary table per concept, one
  binary table per role, all one- and two-attribute indexes) and a
  **DB2RDF-style layout** (a wide DPH table hashing predicates to
  (pred, value) column pairs [9]);
* :mod:`sqlite_backend` — SQLite as the open-source system (the paper's
  Postgres role);
* :mod:`memory_backend` — the from-scratch :class:`repro.engine.MiniRDBMS`
  as the commercial system with an accessible cost estimator (the paper's
  DB2 role);
* :mod:`sharded_backend` — N hash-partitioned children of either kind
  behind the one-backend API, with partition-pruned routing and
  scatter-gather execution.
"""

from repro.storage.dictionary import Dictionary
from repro.storage.layouts import (
    LayoutData,
    RDFLayout,
    SimpleLayout,
    TableSpec,
)
from repro.storage.base import Backend
from repro.storage.sqlite_backend import SQLiteBackend
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sharded_backend import ShardedBackend

__all__ = [
    "Backend",
    "Dictionary",
    "LayoutData",
    "MemoryBackend",
    "RDFLayout",
    "ShardedBackend",
    "SQLiteBackend",
    "SimpleLayout",
    "TableSpec",
]
