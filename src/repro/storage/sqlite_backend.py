"""SQLite backend — the reproduction's open-source RDBMS (Postgres role).

SQLite is a real, cost-based SQL engine shipped with CPython, so it plays
the role PostgreSQL plays in the paper: evaluating the translated FOL
reformulations over the simple layout with all indexes built.

SQLite's ``EXPLAIN QUERY PLAN`` exposes no numeric cost, so the backend's
:meth:`estimated_cost` plans the statement against a *shadow catalog*: a
:class:`repro.engine.MiniRDBMS` planner instance holding the same schemas
and statistics (but no rows), with SQLite-calibrated cost constants. This
mirrors the paper's setup where cost estimates for Postgres were obtained
per-statement before execution (via ``explain`` over JDBC) — documented as
a substitution in DESIGN.md.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import List, Optional, Tuple

from repro.engine.catalog import ColumnStats, TableStats
from repro.engine.database import MiniRDBMS
from repro.engine.operators import CostParameters
from repro.storage.base import Backend, BulkLoader, Row
from repro.storage.layouts import LayoutData


class _SQLiteBulkLoader(BulkLoader):
    """Deferred-index bulk loader for :class:`SQLiteBackend`.

    Appends run plain ``INSERT`` into index-less tables (no per-row
    B-tree maintenance, no OR IGNORE uniqueness probe); :meth:`finish`
    dedups each table with one ``GROUP BY`` pass, then builds the
    ``ux_`` unique index, the declared secondaries, shadow-catalog
    schema, exact statistics (one ``COUNT``/``COUNT(DISTINCT)`` scan),
    and a single ``ANALYZE`` + commit. The connection lock is held for
    the whole session.
    """

    def __init__(self, backend: "SQLiteBackend") -> None:
        super().__init__(backend)
        backend._connection_lock.acquire()
        self._cursor = backend._cursor()

    def create_table(self, name, columns, indexes=(), shard_key=None) -> None:
        """Declare (and create empty, index-less) one table."""
        super().create_table(name, columns, indexes, shard_key)
        columns_ddl = ", ".join(f"{c} INTEGER" for c in columns)
        self._cursor.execute(f"DROP TABLE IF EXISTS {name}")
        self._cursor.execute(f"CREATE TABLE {name} ({columns_ddl})")

    def _append(self, table: str, rows: List[Row]) -> None:
        placeholders = ", ".join("?" for _ in self._specs[table].columns)
        self._cursor.executemany(
            f"INSERT INTO {table} VALUES ({placeholders})", rows
        )

    def _finish(self) -> None:
        backend: "SQLiteBackend" = self._backend
        try:
            cursor = self._cursor
            for spec in self._specs.values():
                columns = ", ".join(spec.columns)
                # Set semantics: drop duplicate rows (keep the earliest)
                # before the unique index can be built over the table.
                cursor.execute(
                    f"DELETE FROM {spec.name} WHERE rowid NOT IN "
                    f"(SELECT MIN(rowid) FROM {spec.name} GROUP BY {columns})"
                )
                cursor.execute(
                    f"CREATE UNIQUE INDEX IF NOT EXISTS ux_{spec.name} "
                    f"ON {spec.name} ({columns})"
                )
                for index_columns in spec.indexes:
                    index_name = f"ix_{spec.name}_{'_'.join(index_columns)}"
                    cursor.execute(
                        f"CREATE INDEX IF NOT EXISTS {index_name} "
                        f"ON {spec.name} ({', '.join(index_columns)})"
                    )
                backend._shadow.create_table(spec.name, spec.columns)
                for index_columns in spec.indexes:
                    backend._shadow.create_index(spec.name, index_columns)
                distincts = ", ".join(
                    f"COUNT(DISTINCT {c})" for c in spec.columns
                )
                measured = cursor.execute(
                    f"SELECT COUNT(*), {distincts} FROM {spec.name}"
                ).fetchone()
                stats = TableStats(cardinality=measured[0])
                for position, column in enumerate(spec.columns):
                    stats.columns[column] = ColumnStats(
                        distinct_values=measured[position + 1]
                    )
                backend._shadow.catalog.set_statistics(spec.name, stats)
            cursor.execute("ANALYZE")
            backend._connection.commit()
        finally:
            backend._connection_lock.release()

    def _abort(self) -> None:
        backend: "SQLiteBackend" = self._backend
        try:
            backend._connection.rollback()
            for spec in self._specs.values():
                self._cursor.execute(f"DROP TABLE IF EXISTS {spec.name}")
            backend._connection.commit()
        finally:
            backend._connection_lock.release()

#: Cost constants calibrated for the SQLite backend (B-tree storage makes
#: index probes comparatively cheaper and materialization pricier than in
#: the in-memory engine).
SQLITE_COSTS = CostParameters(
    seq_scan_per_row=1.0,
    index_probe=0.01,
    hash_build_per_row=1.4,
    hash_probe_per_row=1.1,
    output_per_row=0.5,
    dedup_per_row=1.2,
    materialize_per_row=1.0,
    cross_join_penalty=10.0,
)


class SQLiteBackend(Backend):
    """In-memory SQLite with a planner-based cost estimator.

    The single in-memory connection is created with
    ``check_same_thread=False`` and every use of it is serialized behind a
    lock, so one backend instance can safely serve
    :meth:`repro.obda.system.OBDASystem.answer_many` worker threads (an
    in-memory database cannot be reopened per thread — each new
    ``:memory:`` connection would be a fresh empty database).
    """

    name = "sqlite"

    def __init__(self, max_statement_length: Optional[int] = None) -> None:
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            ":memory:", check_same_thread=False
        )
        self._connection_lock = threading.Lock()
        self._shadow = MiniRDBMS(
            max_statement_length=max_statement_length or 1_000_000_000,
            cost_parameters=SQLITE_COSTS,
        )
        self.max_statement_length = max_statement_length

    def _cursor(self) -> sqlite3.Cursor:
        if self._connection is None:
            raise RuntimeError("SQLiteBackend is closed")
        return self._connection.cursor()

    # ------------------------------------------------------------------
    def load(self, data: LayoutData) -> None:
        """Create tables/indexes, bulk-load rows, ANALYZE, and mirror
        the schema + statistics into the shadow planner catalog."""
        with self._connection_lock:
            self._load_locked(data)

    def _load_locked(self, data: LayoutData) -> None:
        cursor = self._cursor()
        for spec in data.tables:
            columns_ddl = ", ".join(f"{c} INTEGER" for c in spec.columns)
            cursor.execute(f"DROP TABLE IF EXISTS {spec.name}")
            cursor.execute(f"CREATE TABLE {spec.name} ({columns_ddl})")
            placeholders = ", ".join("?" for _ in spec.columns)
            cursor.executemany(
                f"INSERT INTO {spec.name} VALUES ({placeholders})", spec.rows
            )
            # A unique index over the full row makes the write path's
            # INSERT OR IGNORE enforce set semantics (the logical model:
            # relations are sets of facts).
            cursor.execute(
                f"CREATE UNIQUE INDEX IF NOT EXISTS ux_{spec.name} "
                f"ON {spec.name} ({', '.join(spec.columns)})"
            )
            for index_columns in spec.indexes:
                index_name = f"ix_{spec.name}_{'_'.join(index_columns)}"
                cursor.execute(
                    f"CREATE INDEX IF NOT EXISTS {index_name} "
                    f"ON {spec.name} ({', '.join(index_columns)})"
                )
            # Shadow catalog: same schema and statistics, no rows.
            self._shadow.create_table(spec.name, spec.columns)
            for index_columns in spec.indexes:
                self._shadow.create_index(spec.name, index_columns)
            stats = TableStats(cardinality=len(spec.rows))
            for position, column in enumerate(spec.columns):
                distinct = len({row[position] for row in spec.rows})
                stats.columns[column] = ColumnStats(distinct_values=distinct)
            self._shadow.catalog.set_statistics(spec.name, stats)
        cursor.execute("ANALYZE")
        self._connection.commit()

    def bulk_load(self) -> BulkLoader:
        """A deferred-index bulk-ingest session on the connection."""
        return _SQLiteBulkLoader(self)

    # ------------------------------------------------------------------
    def insert_rows(self, table: str, rows: List[Row]) -> None:
        """INSERT OR IGNORE encoded rows and refresh shadow statistics."""
        if not rows:
            return
        with self._connection_lock:
            self._insert_rows_locked(table, rows)
            self._connection.commit()

    def delete_rows(self, table: str, rows: List[Row]) -> int:
        """Delete encoded rows; returns how many were removed."""
        if not rows:
            return 0
        with self._connection_lock:
            removed = self._delete_rows_locked(table, rows)
            self._connection.commit()
        return removed

    def apply_changes(self, inserts, deletes) -> None:
        """One lock hold + one commit for the whole multi-table write, so
        a concurrent :meth:`execute` (which also takes the connection
        lock) sees the pre- or post-write state, never a mix."""
        with self._connection_lock:
            for table, rows in inserts.items():
                self._insert_rows_locked(table, rows)
            for table, rows in deletes.items():
                self._delete_rows_locked(table, rows)
            self._connection.commit()

    def _insert_rows_locked(self, table: str, rows: List[Row]) -> int:
        """INSERT OR IGNORE a batch and fold the delta into the shadow
        statistics. Connection lock held by the caller; no commit."""
        columns = self._shadow.catalog.table(table).columns
        placeholders = ", ".join("?" for _ in columns)
        cursor = self._cursor()
        cursor.executemany(
            f"INSERT OR IGNORE INTO {table} VALUES ({placeholders})", rows
        )
        # rowcount aggregates across executemany; OR IGNOREd duplicates
        # do not count as modifications.
        inserted = max(cursor.rowcount, 0)
        self._adjust_shadow_statistics(table, columns, inserted=inserted)
        return inserted

    def _delete_rows_locked(self, table: str, rows: List[Row]) -> int:
        """DELETE a batch and fold the delta into the shadow statistics.
        Connection lock held by the caller; no commit."""
        columns = self._shadow.catalog.table(table).columns
        predicate = " AND ".join(f"{c} = ?" for c in columns)
        cursor = self._cursor()
        cursor.executemany(f"DELETE FROM {table} WHERE {predicate}", rows)
        removed = max(cursor.rowcount, 0)
        self._adjust_shadow_statistics(table, columns, removed=removed)
        return removed

    def _adjust_shadow_statistics(
        self, table: str, columns, inserted: int = 0, removed: int = 0
    ) -> None:
        """Fold a write's delta into the cached statistics — no scans.

        Called with the connection lock held. Cardinality stays exact;
        per-column distinct counts are approximated (grown by the insert
        count, clamped to the cardinality). Statistics are optimizer
        hints, and the data epoch already drops every estimate a write
        staled, so approximate distincts never affect answer correctness.
        """
        old = self._shadow.catalog.statistics(table)
        cardinality = max(0, old.cardinality + inserted - removed)
        stats = TableStats(cardinality=cardinality)
        for column in columns:
            column_stats = old.columns.get(column)
            distinct = column_stats.distinct_values if column_stats else 0
            distinct = min(cardinality, distinct + inserted)
            if cardinality > 0:
                distinct = max(1, distinct)
            stats.columns[column] = ColumnStats(distinct_values=distinct)
        self._shadow.catalog.set_statistics(table, stats)

    # ------------------------------------------------------------------
    def execute(self, sql: str) -> List[Row]:
        """Evaluate *sql* on the SQLite connection; returns result rows."""
        self._check_length(sql)
        with self._connection_lock:
            cursor = self._cursor()
            return [tuple(row) for row in cursor.execute(sql).fetchall()]

    def estimated_cost(self, sql: str) -> float:
        """Cost estimate for *sql* from the shadow MiniRDBMS planner
        (SQLite's EXPLAIN QUERY PLAN exposes no numeric cost)."""
        self._check_length(sql)
        return self._shadow.estimated_cost(sql)

    def explain_text(self, sql: str, analyze: bool = False) -> str:
        """SQLite's own EXPLAIN QUERY PLAN output (no numeric costs).

        ``analyze=True`` additionally executes the statement and
        appends the measured total (SQLite exposes no per-node
        instrumentation, so whole-statement wall time is the best
        measured-vs-estimated view this backend can give).
        """
        with self._connection_lock:
            cursor = self._cursor()
            rows = cursor.execute(f"EXPLAIN QUERY PLAN {sql}").fetchall()
            text = "\n".join(str(row) for row in rows)
            if analyze:
                started = time.perf_counter()
                result = cursor.execute(sql).fetchall()
                elapsed = time.perf_counter() - started
                text += (
                    f"\nExecution: {len(result)} rows"
                    f" in {elapsed * 1000:.3f} ms"
                )
        return text

    def table_statistics(self, table: str):
        """The shadow planner's statistics for *table* (kept in step with
        the stored rows by the write path)."""
        return self._shadow.catalog.statistics(table)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the in-memory connection (drops the database). Idempotent."""
        with self._connection_lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def _check_length(self, sql: str) -> None:
        if (
            self.max_statement_length is not None
            and len(sql) > self.max_statement_length
        ):
            from repro.engine.errors import StatementTooLongError

            raise StatementTooLongError(len(sql), self.max_statement_length)
