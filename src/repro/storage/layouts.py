"""Storage layouts: simple (per-predicate tables) and DB2RDF-style DPH.

A layout turns an ABox into :class:`TableSpec` rows (dictionary-encoded)
and tells the SQL translator how to access an atom: as one table reference
(simple layout) or as a union of column probes over a wide table (RDF
layout). The RDF layout is the reproduction of DB2RDF [9]: each subject is
one (or more, on overflow) wide rows holding up to ``width`` (predicate,
value) pairs, a predicate's column being its hash slot possibly displaced
by linear probing — so a query atom must disjunct over *all* columns, which
is exactly what makes reformulated SQL on this layout huge (§6.3).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dllite.abox import ABox
from repro.queries.atoms import Atom
from repro.storage.dictionary import Dictionary

#: Sentinel predicate name for concept membership in the RDF layout.
TYPE_PREDICATE = "rdf:type"

#: An encoded value that no dictionary code ever takes (codes are >= 0).
IMPOSSIBLE_CODE = 999_999_999


@dataclass(frozen=True)
class AtomBranch:
    """One way to read an atom from the storage: a table access.

    ``arg_columns[i]`` is the column providing the atom's i-th argument;
    ``fixed`` are additional (column = encoded-constant) constraints.
    """

    table: str
    arg_columns: Tuple[str, ...]
    fixed: Tuple[Tuple[str, int], ...] = ()


@dataclass
class TableSpec:
    """A table the backend must materialize."""

    name: str
    columns: Tuple[str, ...]
    rows: List[Tuple]
    indexes: Tuple[Tuple[str, ...], ...] = ()
    #: The home-key column hash-sharded storage partitions this table by
    #: (``None`` means the first column — the subject in both layouts).
    shard_key: Optional[str] = None


@dataclass
class LayoutData:
    """Everything a backend needs to load."""

    tables: List[TableSpec] = field(default_factory=list)


def _sanitize(name: str) -> str:
    """Make a predicate name safe as (part of) a SQL identifier."""
    return "".join(c if c.isalnum() else "_" for c in name).lower()


class SimpleLayout:
    """One unary table per concept, one binary table per role (§6.1).

    All one- and two-attribute indexes are declared, as in the paper's
    Postgres setup.
    """

    name = "simple"

    def __init__(self, dictionary: Optional[Dictionary] = None) -> None:
        self.dictionary = dictionary or Dictionary()

    @staticmethod
    def concept_table(concept: str) -> str:
        return f"c_{_sanitize(concept)}"

    @staticmethod
    def role_table(role: str) -> str:
        return f"r_{_sanitize(role)}"

    def build(
        self,
        abox: ABox,
        tbox=None,
        extra_concepts=(),
        extra_roles=(),
    ) -> LayoutData:
        """Encode the ABox into per-predicate tables.

        When a TBox is supplied, a table exists for *every* predicate of
        its signature (reformulations mention TBox predicates that may
        have no explicit facts — those tables are simply empty).
        ``extra_concepts``/``extra_roles`` extend the schema further, for
        workloads querying predicates outside the KB signature.
        """
        concepts = set(abox.concept_names()) | set(extra_concepts)
        roles = set(abox.role_names()) | set(extra_roles)
        if tbox is not None:
            concepts |= set(tbox.concept_names())
            roles |= set(tbox.role_names())
        data = LayoutData()
        for concept in sorted(concepts):
            rows = [
                (self.dictionary.encode(individual),)
                for (individual,) in sorted(abox.concept_facts(concept))
            ]
            data.tables.append(
                TableSpec(
                    name=self.concept_table(concept),
                    columns=("s",),
                    rows=rows,
                    indexes=(("s",),),
                )
            )
        for role in sorted(roles):
            rows = [
                (self.dictionary.encode(s), self.dictionary.encode(o))
                for s, o in sorted(abox.role_facts(role))
            ]
            data.tables.append(
                TableSpec(
                    name=self.role_table(role),
                    columns=("s", "o"),
                    rows=rows,
                    indexes=(("s",), ("o",), ("s", "o")),
                )
            )
        return data

    def atom_branches(self, atom: Atom) -> List[AtomBranch]:
        """A single branch: the atom's own table."""
        if atom.is_concept_atom:
            return [AtomBranch(self.concept_table(atom.predicate), ("s",))]
        return [AtomBranch(self.role_table(atom.predicate), ("s", "o"))]


class RDFLayout:
    """A DB2RDF-style wide-table ("DPH") layout.

    ``width`` (predicate, value) column pairs per row; concept membership
    is stored under the reserved :data:`TYPE_PREDICATE`. Placement: a
    predicate's *home* column is ``crc32(name) % width``; collisions probe
    linearly and, failing that, spill the subject onto an extra row.
    """

    name = "rdf"

    def __init__(
        self, width: int = 8, dictionary: Optional[Dictionary] = None
    ) -> None:
        if width < 1:
            raise ValueError("RDF layout width must be positive")
        self.width = width
        self.dictionary = dictionary or Dictionary()

    # ------------------------------------------------------------------
    def home_column(self, predicate: str) -> int:
        """The hash slot a predicate prefers."""
        return zlib.crc32(predicate.encode("utf-8")) % self.width

    def build(self, abox: ABox, tbox=None) -> LayoutData:
        """Encode the ABox into one wide DPH table.

        The TBox argument is accepted for interface symmetry with the
        simple layout; the wide table needs no per-predicate schema, and
        atoms over fact-less predicates translate to an impossible code.
        """
        # Gather (predicate name, value code) pairs per subject.
        per_subject: Dict[int, List[Tuple[str, int]]] = {}
        for role in sorted(abox.role_names()):
            for s, o in sorted(abox.role_facts(role)):
                subject = self.dictionary.encode(s)
                per_subject.setdefault(subject, []).append(
                    (role, self.dictionary.encode(o))
                )
        for concept in sorted(abox.concept_names()):
            class_code = self.dictionary.encode(concept)
            for (individual,) in sorted(abox.concept_facts(concept)):
                subject = self.dictionary.encode(individual)
                per_subject.setdefault(subject, []).append(
                    (TYPE_PREDICATE, class_code)
                )

        columns: List[str] = ["s"]
        for i in range(self.width):
            columns.extend([f"p{i}", f"v{i}"])

        rows: List[Tuple] = []
        for subject in sorted(per_subject):
            spill_rows: List[List] = []
            for predicate, value in per_subject[subject]:
                pred_code = self.dictionary.encode(predicate)
                placed = False
                for row in spill_rows:
                    home = self.home_column(predicate)
                    for probe in range(self.width):
                        column = (home + probe) % self.width
                        slot = 1 + 2 * column
                        if row[slot] is None:
                            row[slot] = pred_code
                            row[slot + 1] = value
                            placed = True
                            break
                    if placed:
                        break
                if not placed:
                    row = [subject] + [None] * (2 * self.width)
                    home = self.home_column(predicate)
                    slot = 1 + 2 * home
                    row[slot] = pred_code
                    row[slot + 1] = value
                    spill_rows.append(row)
            rows.extend(tuple(row) for row in spill_rows)

        indexes: List[Tuple[str, ...]] = [("s",)]
        indexes.extend((f"p{i}",) for i in range(self.width))
        return LayoutData(
            tables=[
                TableSpec(
                    name="dph",
                    columns=tuple(columns),
                    rows=rows,
                    indexes=tuple(indexes),
                )
            ]
        )

    def atom_branches(self, atom: Atom) -> List[AtomBranch]:
        """One branch per wide column: the predicate may sit in any slot."""
        branches: List[AtomBranch] = []
        if atom.is_concept_atom:
            type_code = self.dictionary.try_encode(TYPE_PREDICATE)
            class_code = self.dictionary.try_encode(atom.predicate)
            type_code = IMPOSSIBLE_CODE if type_code is None else type_code
            class_code = IMPOSSIBLE_CODE if class_code is None else class_code
            for i in range(self.width):
                branches.append(
                    AtomBranch(
                        "dph",
                        ("s",),
                        ((f"p{i}", type_code), (f"v{i}", class_code)),
                    )
                )
        else:
            pred_code = self.dictionary.try_encode(atom.predicate)
            pred_code = IMPOSSIBLE_CODE if pred_code is None else pred_code
            for i in range(self.width):
                branches.append(
                    AtomBranch("dph", ("s", f"v{i}"), ((f"p{i}", pred_code),))
                )
        return branches
