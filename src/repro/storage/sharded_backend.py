"""Hash-sharded storage: one logical backend over N partitioned children.

:class:`ShardedBackend` hash-partitions every loaded table by its *shard
key* (the home-key column — the first column in both predicate layouts,
i.e. the subject) across ``shards`` child backends, each a full
:class:`~repro.storage.memory_backend.MemoryBackend` or
:class:`~repro.storage.sqlite_backend.SQLiteBackend`. Every statement is
routed by the shard analysis in :func:`repro.engine.planner.
analyze_shard_route` (or by a logical :class:`~repro.sql.translator.
ShardHint` computed at plan time, which skips re-parsing cached
statements):

* **pruned** — an equality binds the shard key to a constant: the
  statement runs on exactly the shards those constants hash to;
* **scatter** — every join is shard-key co-partitioned but unbound: the
  statement runs on *all* shards over the PR 4 worker pool
  (:class:`~repro.engine.parallel.ParallelContext`) and the per-shard
  results merge — a global set-union when the statement's root
  deduplicates, order-preserving concatenation (exact multiset)
  otherwise;
* **gather** — some join is not on the shard key, so shard-local
  evaluation would miss cross-shard matches: the referenced tables are
  pulled shard-parallel into a coordinator :class:`~repro.engine.
  database.MiniRDBMS` (cached until the next write to those tables) and
  the statement executes there.

The **execution substrate** under the shards is pluggable
(``substrate`` argument / ``REPRO_EXECUTOR``): with ``serial`` or
``thread`` every child lives in the coordinator process and fan-out
runs inline or on the thread pool; with ``process`` each child is
hosted by a long-lived forked worker
(:class:`~repro.storage.process_workers.ProcessShardWorker`) and
scatter legs are dispatch threads blocking on worker IPC with the GIL
released — shard pipelines then truly run in parallel on stock
CPython, and results return as dictionary-encoded columnar batches
over shared memory (:mod:`repro.storage.shm_exchange`) instead of
per-row pickles. ``auto`` prefers ``process`` exactly when it pays:
stock-GIL CPython on a multi-core box.

On the process substrate every worker sits behind a
:class:`~repro.storage.supervisor.SupervisedShardWorker` by default
(``REPRO_SUPERVISE``): worker death is detected, the worker respawned
and rebuilt to the shard's current epoch, RPCs carry deadlines
(``REPRO_RPC_TIMEOUT_MS``) with bounded retries, and a shard whose
respawns keep failing degrades to in-coordinator execution behind a
circuit breaker — identical answers, louder telemetry. See
``docs/ROBUSTNESS.md`` and the deterministic fault harness in
:mod:`repro.faults`.

Writes route per shard: ``apply_changes`` splits each table's delta by
the shard key and applies every child's slice under one exclusive
read/write barrier, so a concurrently executing query observes either
the full pre-write or the full post-write state across *all* shards
(on the process substrate the deltas replicate into the shard workers
under the same barrier hold, so worker state tracks the epoch protocol
exactly).
After every write the per-shard catalog statistics are re-merged
(:meth:`repro.engine.catalog.TableStats.merged`) into the coordinator's
planner catalog, which prices the gather fallback; pruned probes and
scatter fan-out are priced against the child estimates plus
:class:`ShardCostParameters` overheads.
"""

from __future__ import annotations

import os
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.catalog import TableStats
from repro.engine.database import MiniRDBMS
from repro.engine.errors import StatementTooLongError, UnknownTableError
from repro.engine.parallel import ParallelContext, resolve_substrate
from repro.engine.planner import ShardRoute, analyze_shard_route
from repro.engine.sqlparser import parse_sql
from repro.faults import FaultInjector, FaultPlan
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import NO_SPAN, activate, current_span
from repro.serving.concurrency import ReadWriteBarrier, current_deadline
from repro.storage.base import Backend, BulkLoader, Row
from repro.storage.layouts import LayoutData, TableSpec
from repro.storage.memory_backend import MemoryBackend
from repro.storage.process_workers import ProcessShardWorker
from repro.storage.sqlite_backend import SQLiteBackend
from repro.storage.supervisor import (
    ShardSupervisor,
    SupervisionConfig,
    supervision_enabled,
)

#: Environment knob: thread count for scatter/gather fan-out (default:
#: one thread per shard, capped at the CPU count).
SHARD_WORKERS_ENV = "REPRO_SHARD_WORKERS"

#: Statements whose routes we keep (keyed by exact SQL text).
ROUTE_CACHE_SIZE = 512


@dataclass(frozen=True)
class ShardCostParameters:
    """How the sharded backend prices its three execution routes."""

    #: Per-shard dispatch + merge overhead a scatter pays on top of the
    #: largest shard's own estimate.
    scatter_overhead_per_shard: float = 5.0
    #: Per-row cost of pulling a referenced table to the coordinator on
    #: the gather route (charged even when the copy is warm, so plans
    #: that *stay* shard-local keep winning the cost comparison).
    gather_transfer_per_row: float = 0.5
    #: Fixed overhead per pruned shard probe.
    pruned_probe_overhead: float = 1.0


DEFAULT_SHARD_COSTS = ShardCostParameters()


@dataclass
class ShardExecutionStats:
    """Counters from one sharded execute (telemetry; duck-compatible
    with :class:`repro.engine.executor.ExecutionStats` consumers)."""

    route: str = "scatter"
    #: The execution substrate the shards ran on.
    substrate: str = "thread"
    shards_touched: Tuple[int, ...] = ()
    shard_count: int = 1
    rows: int = 0
    batches: int = 0
    workers: int = 1
    morsels: int = 0
    per_worker: List[Dict] = field(default_factory=list)
    #: One ``{"shard", "rows"}`` dict per shard that executed.
    per_shard: List[Dict] = field(default_factory=list)


def _env_workers(shards: int, substrate: str = "thread") -> int:
    raw = os.environ.get(SHARD_WORKERS_ENV)
    if raw is not None:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    if substrate == "process":
        # Dispatch threads only block on worker IPC (GIL released in
        # recv), so give every shard its own — capping at the CPU count
        # would idle workers behind the dispatch pool.
        return max(1, shards)
    return max(1, min(shards, os.cpu_count() or 1))


class _ShardedBulkLoader(BulkLoader):
    """Per-shard parallel bulk ingest behind the one-backend API.

    One child bulk session per shard; every appended batch is hash-split
    by the declared shard key and **buffered** per shard, flushing to
    the children only once :data:`FLUSH_ROWS` rows are pending — so
    ingest throughput is independent of the caller's chunk size (many
    small appends coalesce into few large transfers, which is what
    amortizes the per-call RPC cost on the process substrate). On the
    process substrate the per-shard sessions are driven from the fan-out
    pool, so N worker processes append — and, at finish, dedup, build
    indexes, and collect statistics — **concurrently**; with in-process
    children dispatch stays on the calling thread (their loaders pin the
    backend lock to it, and pure-Python index builds would serialize on
    the GIL anyway). The coordinator holds the exclusive write barrier
    for the whole session and publishes schema + merged statistics once,
    at finish.
    """

    #: Pending rows buffered across tables before a fan-out flush — the
    #: session's constant residency bound (independent of dataset size).
    FLUSH_ROWS = 100_000

    def __init__(self, backend: "ShardedBackend") -> None:
        super().__init__(backend)
        self._positions: Dict[str, int] = {}
        #: table -> one pending row list per shard.
        self._pending: Dict[str, List[List[Row]]] = {}
        self._pending_rows = 0
        self._dispatch_parallel = backend.substrate == "process"
        backend._barrier.acquire_write()
        try:
            self._children = [child.bulk_load() for child in backend.children]
        except BaseException:
            backend._barrier.release_write()
            raise

    def _each(self, op: Callable[[int], object]) -> None:
        backend: "ShardedBackend" = self._backend
        if self._dispatch_parallel:
            backend._parallel.map_partitions(op, backend.shards)
        else:
            for shard in range(backend.shards):
                op(shard)

    def create_table(self, name, columns, indexes=(), shard_key=None) -> None:
        """Declare one table on every shard's session."""
        super().create_table(name, columns, indexes, shard_key)
        columns = tuple(columns)
        key = shard_key or columns[0]
        self._positions[name] = columns.index(key)
        self._pending[name] = [[] for _ in range(self._backend.shards)]
        self._each(
            lambda shard: self._children[shard].create_table(
                name, columns, indexes, shard_key
            )
        )

    def _append(self, table: str, rows: List[Row]) -> None:
        backend: "ShardedBackend" = self._backend
        position = self._positions[table]
        shard_of = backend.shard_of
        shards = backend.shards
        pending = self._pending[table]
        # Inlined int fast path: dictionary-encoded home keys are ints,
        # and at 1M rows the per-row shard_of call is measurable.
        for row in rows:
            value = row[position]
            pending[
                value % shards if type(value) is int else shard_of(value)
            ].append(row)
        self._pending_rows += len(rows)
        if self._pending_rows >= self.FLUSH_ROWS:
            self._flush()

    def _flush(self) -> None:
        """Push every buffered slice to its home shard (one fan-out)."""
        if not self._pending_rows:
            return
        batches = {
            table: slices
            for table, slices in self._pending.items()
            if any(slices)
        }
        self._pending = {
            table: [[] for _ in slices]
            for table, slices in self._pending.items()
        }
        self._pending_rows = 0

        def push(shard: int) -> None:
            child = self._children[shard]
            for table, slices in batches.items():
                if slices[shard]:
                    child.append(table, slices[shard])

        self._each(push)

    def _finish(self) -> None:
        backend: "ShardedBackend" = self._backend
        try:
            self._flush()
            self._each(lambda shard: self._children[shard].finish())
            with backend._schema_lock:
                for spec in self._specs.values():
                    backend._schema[spec.name.lower()] = (
                        spec.columns,
                        spec.shard_key or spec.columns[0],
                        spec.indexes,
                    )
            backend._schema_version += 1
            with backend._coordinator_lock:
                for spec in self._specs.values():
                    backend._coordinator.create_table(
                        spec.name, spec.columns
                    )
                    for index_columns in spec.indexes:
                        backend._coordinator.create_index(
                            spec.name, index_columns
                        )
                backend._after_write_locked(
                    [name.lower() for name in self._specs]
                )
        finally:
            backend._barrier.release_write()

    def _abort(self) -> None:
        backend: "ShardedBackend" = self._backend
        self._pending.clear()
        self._pending_rows = 0
        try:
            for child in self._children:
                try:
                    child.abort()
                except Exception:  # pragma: no cover - best effort
                    pass
        finally:
            backend._barrier.release_write()


class ShardedBackend(Backend):
    """N hash-partitioned child backends behind the one-backend API.

    ``child`` names the child kind (``"memory"`` or ``"sqlite"``);
    ``child_factory`` overrides it with a zero-argument callable for
    custom children. ``workers`` bounds the scatter/gather fan-out pool
    (default ``REPRO_SHARD_WORKERS``, else one thread per shard —
    capped at the CPU count on the thread substrate; 1 keeps fan-out
    sequential). ``substrate`` picks where the children live: in-process
    (``"serial"`` / ``"thread"``) or one forked worker process per
    shard (``"process"``); default ``REPRO_EXECUTOR``, else
    auto-detection (see :func:`repro.engine.parallel.
    resolve_substrate`).
    """

    def __init__(
        self,
        shards: int,
        child: str = "memory",
        child_factory: Optional[Callable[[], Backend]] = None,
        workers: Optional[int] = None,
        max_statement_length: Optional[int] = None,
        cost_parameters: ShardCostParameters = DEFAULT_SHARD_COSTS,
        substrate: Optional[str] = None,
        supervision: Optional[SupervisionConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if child_factory is None:
            if child == "memory":
                child_factory = MemoryBackend
            elif child == "sqlite":
                child_factory = SQLiteBackend
            else:
                raise ValueError(f"unknown child backend {child!r}")
            if max_statement_length is None and child == "memory":
                from repro.engine.database import DB2_STATEMENT_LIMIT

                max_statement_length = DB2_STATEMENT_LIMIT
        self.shards = shards
        #: The resolved execution substrate under the shards.
        self.substrate = resolve_substrate(substrate, prefer_processes=True)
        self._supervisor: Optional[ShardSupervisor] = None
        if self.substrate == "process":
            # One long-lived forked engine worker per shard; the child
            # backend is built *inside* its worker, never coordinator-
            # side, so shard tables live only in worker memory. By
            # default each worker sits behind a SupervisedShardWorker
            # (respawn on death, RPC retry, circuit-breaker
            # degradation); REPRO_SUPERVISE=0 opts back into raw
            # workers, where any crash is the caller's problem.
            if supervision is not None or supervision_enabled():
                injector = fault_injector
                if injector is None:
                    plan = FaultPlan.from_env()
                    if plan is not None and plan.enabled:
                        injector = FaultInjector(plan)
                self._supervisor = ShardSupervisor(
                    child_factory,
                    shards,
                    config=supervision,
                    injector=injector,
                )
                self.children: List[Backend] = list(self._supervisor.workers)
            else:
                self.children = [
                    ProcessShardWorker(child_factory, shard)
                    for shard in range(shards)
                ]
        else:
            self.children = [child_factory() for _ in range(shards)]
        self.name = f"sharded[{shards}x{self.children[0].name}]"
        self.max_statement_length = max_statement_length
        self.cost_parameters = cost_parameters
        self._parallel = ParallelContext(
            workers
            if workers is not None
            else _env_workers(shards, self.substrate),
            substrate="serial" if self.substrate == "serial" else "thread",
        )
        #: Coordinator engine: full schema + merged statistics always;
        #: gathered row copies only on demand (cross-shard joins).
        self._coordinator = MiniRDBMS(
            max_statement_length=max_statement_length or 1_000_000_000
        )
        self._coordinator_lock = threading.RLock()
        #: table (lowercase) -> (columns, shard key column, indexes).
        #: Mutations (load) happen under the exclusive barrier *and*
        #: this leaf lock; snapshot-style readers (route planning, the
        #: largest-shard scan) take only the lock, so they never race a
        #: concurrent load without having to hold the read barrier.
        self._schema: Dict[str, Tuple[Tuple[str, ...], str, Tuple]] = {}
        self._schema_lock = threading.Lock()
        self._schema_version = 0
        #: Monotonic per-table write counters vs the version each
        #: coordinator row copy was gathered at.
        self._table_versions: Dict[str, int] = {}
        self._gathered: Dict[str, int] = {}
        self._route_cache: "OrderedDict[str, ShardRoute]" = OrderedDict()
        self._route_cache_version = -1
        self._route_lock = threading.Lock()
        self._barrier = ReadWriteBarrier()
        self._telemetry_lock = threading.Lock()
        self._counters = {
            "executions": 0,
            "pruned": 0,
            "scatter": 0,
            "gather": 0,
            # Gather-path transfer accounting: how much data the
            # coordinator pulled out of the shards to materialize its
            # row copies (bytes are estimated at 8 per cell — the shm
            # wire format's int64 width — since in-process transfers
            # never serialize).
            "gather_tables": 0,
            "gather_rows": 0,
            "gather_cells": 0,
            "gather_bytes": 0,
        }
        self._largest_shard: Optional[int] = None
        self._closed = False
        self.last_execution: Optional[ShardExecutionStats] = None

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def shard_of(self, value: object) -> int:
        """The shard a home-key value hashes to (stable across runs)."""
        if isinstance(value, int):
            return value % self.shards
        return zlib.crc32(str(value).encode("utf-8")) % self.shards

    def _table_entry(self, table: str) -> Tuple[Tuple[str, ...], str, Tuple]:
        entry = self._schema.get(table.lower())
        if entry is None:
            raise UnknownTableError(f"unknown table {table!r}")
        return entry

    def _split_rows(
        self, table: str, rows: Sequence[Row]
    ) -> Dict[int, List[Row]]:
        columns, key, _indexes = self._table_entry(table)
        position = columns.index(key)
        grouped: Dict[int, List[Row]] = {}
        for row in rows:
            grouped.setdefault(self.shard_of(row[position]), []).append(
                tuple(row)
            )
        return grouped

    # ------------------------------------------------------------------
    # Loading and writes
    # ------------------------------------------------------------------
    def load(self, data: LayoutData) -> None:
        """Partition each table's rows by its shard key and load every
        child with its slice (plus the full schema and indexes, so any
        shard can evaluate any statement)."""
        with self._barrier.exclusive():
            per_child: List[List[TableSpec]] = [[] for _ in range(self.shards)]
            for spec in data.tables:
                key = spec.shard_key or spec.columns[0]
                position = spec.columns.index(key)
                name = spec.name.lower()
                with self._schema_lock:
                    self._schema[name] = (
                        tuple(spec.columns),
                        key,
                        spec.indexes,
                    )
                slices: List[List[Row]] = [[] for _ in range(self.shards)]
                for row in spec.rows:
                    slices[self.shard_of(row[position])].append(row)
                for shard in range(self.shards):
                    per_child[shard].append(
                        TableSpec(
                            name=spec.name,
                            columns=spec.columns,
                            rows=slices[shard],
                            indexes=spec.indexes,
                            shard_key=spec.shard_key,
                        )
                    )
            self._parallel.map_partitions(
                lambda shard: self.children[shard].load(
                    LayoutData(tables=per_child[shard])
                ),
                self.shards,
            )
            self._schema_version += 1
            with self._coordinator_lock:
                for spec in data.tables:
                    self._coordinator.create_table(spec.name, spec.columns)
                    for index_columns in spec.indexes:
                        self._coordinator.create_index(spec.name, index_columns)
                self._after_write_locked(
                    [spec.name.lower() for spec in data.tables]
                )

    def bulk_load(self) -> BulkLoader:
        """A per-shard parallel bulk-ingest session (exclusive barrier
        held for its duration; see :class:`_ShardedBulkLoader`)."""
        return _ShardedBulkLoader(self)

    def insert_rows(self, table: str, rows: List[Row]) -> None:
        """Route encoded rows to their home shards (set semantics)."""
        if not rows:
            return
        with self._barrier.exclusive():
            for shard, slice_rows in self._split_rows(table, rows).items():
                self.children[shard].insert_rows(table, slice_rows)
            with self._coordinator_lock:
                self._after_write_locked([table.lower()])

    def delete_rows(self, table: str, rows: List[Row]) -> int:
        """Delete encoded rows from their home shards; returns how many
        distinct stored rows were removed (duplicate input rows count
        once — the conformance-pinned semantics)."""
        if not rows:
            return 0
        removed = 0
        with self._barrier.exclusive():
            for shard, slice_rows in self._split_rows(table, rows).items():
                removed += self.children[shard].delete_rows(table, slice_rows)
            with self._coordinator_lock:
                self._after_write_locked([table.lower()])
        return removed

    def apply_changes(self, inserts, deletes) -> None:
        """One exclusive barrier hold for the whole multi-table,
        multi-shard write: every child applies its slice of the delta
        atomically, and no query runs between the first and last shard's
        mutation — a reader sees all of the write or none of it."""
        with self._barrier.exclusive():
            per_child_inserts: List[Dict[str, List[Row]]] = [
                {} for _ in range(self.shards)
            ]
            per_child_deletes: List[Dict[str, List[Row]]] = [
                {} for _ in range(self.shards)
            ]
            for table, rows in inserts.items():
                for shard, slice_rows in self._split_rows(table, rows).items():
                    per_child_inserts[shard][table] = slice_rows
            for table, rows in deletes.items():
                for shard, slice_rows in self._split_rows(table, rows).items():
                    per_child_deletes[shard][table] = slice_rows
            for shard, backend in enumerate(self.children):
                if per_child_inserts[shard] or per_child_deletes[shard]:
                    backend.apply_changes(
                        per_child_inserts[shard], per_child_deletes[shard]
                    )
            with self._coordinator_lock:
                self._after_write_locked(
                    [name.lower() for name in (*inserts, *deletes)]
                )

    def _after_write_locked(self, tables: Sequence[str]) -> None:
        """Post-write bookkeeping (coordinator lock held): bump table
        versions (staling gathered copies) and re-merge the per-shard
        statistics into the coordinator's planner catalog. Children
        exposing ``statistics_many`` (process-substrate workers) are
        asked once per write, not once per table — one RPC round-trip
        instead of ``len(tables)``."""
        per_child: List[Optional[Dict[str, TableStats]]] = []
        for child in self.children:
            many = getattr(child, "statistics_many", None)
            per_child.append(many(tables) if many is not None else None)
        for name in tables:
            self._table_versions[name] = self._table_versions.get(name, 0) + 1
            parts = [
                batch[name]
                if batch is not None
                else child.table_statistics(name)
                for batch, child in zip(per_child, self.children)
            ]
            if all(part is not None for part in parts):
                self._coordinator.catalog.set_statistics(
                    name, TableStats.merged(parts)
                )
        self._largest_shard = None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_from_hint(self, hint) -> Optional[ShardRoute]:
        """Build a route from a translator :class:`~repro.sql.translator.
        ShardHint` without parsing any SQL; ``None`` when no hint."""
        if hint is None:
            return None
        tables = tuple(sorted(name.lower() for name in hint.tables))
        if not hint.co_partitioned:
            return ShardRoute("gather", (), tables, hint.dedup_root)
        if hint.key_codes is not None:
            shards = tuple(
                sorted({self.shard_of(code) for code in hint.key_codes})
            )
            return ShardRoute("pruned", shards, tables, hint.dedup_root)
        return ShardRoute(
            "scatter", tuple(range(self.shards)), tables, hint.dedup_root
        )

    def plan_route(self, sql: str, hint=None) -> ShardRoute:
        """The route *sql* must take (hint fast path, else parse once;
        parsed routes are cached per statement text)."""
        route = self.route_from_hint(hint)
        if route is not None:
            return route
        with self._route_lock:
            if self._route_cache_version != self._schema_version:
                self._route_cache.clear()
                self._route_cache_version = self._schema_version
            cached = self._route_cache.get(sql)
            if cached is not None:
                self._route_cache.move_to_end(sql)
                return cached
        with self._schema_lock:
            table_keys = {
                name: (columns, key)
                for name, (columns, key, _indexes) in self._schema.items()
            }
        route = analyze_shard_route(
            parse_sql(sql), table_keys, self.shards, self.shard_of
        )
        with self._route_lock:
            self._route_cache[sql] = route
            while len(self._route_cache) > ROUTE_CACHE_SIZE:
                self._route_cache.popitem(last=False)
        return route

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def execute(self, sql: str, route: Optional[ShardRoute] = None) -> List[Row]:
        """Evaluate *sql* on the route's shards and merge the results.

        When the caller's context carries an active trace span (see
        :func:`repro.obs.trace.current_span`), the execution hangs a
        ``shards.execute`` child under it with one per-shard child per
        fan-out leg — including span subtrees shipped back from forked
        workers on the process substrate.
        """
        self._check_length(sql)
        if route is None:
            route = self.plan_route(sql)
        # The serving deadline rides the *caller's* contextvar; capture
        # it here (same thread) so fan-out legs on pool threads — where
        # contextvars do not flow — can cap their worker RPC waits at
        # min(rpc_timeout, remaining).
        deadline = current_deadline()
        with self._barrier.shared():
            with current_span().child(
                "shards.execute",
                route=route.kind,
                substrate=self.substrate,
                shard_count=self.shards,
            ) as span:
                if route.kind == "gather":
                    rows, stats = self._execute_gather(sql, route, span)
                else:
                    rows, stats = self._execute_shards(
                        sql, route, span, deadline
                    )
                span.set(rows=len(rows), batches=stats.batches)
        stats.shard_count = self.shards
        stats.substrate = self.substrate
        self.last_execution = stats
        with self._telemetry_lock:
            self._counters["executions"] += 1
            self._counters[route.kind] += 1
        registry = get_registry()
        registry.inc("repro.shards.executions")
        registry.inc(f"repro.shards.route.{route.kind}")
        return rows

    def _execute_shards(
        self,
        sql: str,
        route: ShardRoute,
        parent=NO_SPAN,
        deadline: Optional[Tuple[float, float]] = None,
    ) -> Tuple[List[Row], ShardExecutionStats]:
        targets = route.shards

        # *parent* is captured explicitly: the fan-out legs run on pool
        # threads, where the coordinator's contextvar does not flow.
        def one(index: int) -> Tuple[int, List[Row], int]:
            shard = targets[index]
            child = self.children[shard]
            # Children advertising ``supports_deadline`` (supervised
            # workers) take the captured serving deadline per call.
            extra = (
                {"deadline": deadline}
                if deadline is not None
                and getattr(child, "supports_deadline", False)
                else {}
            )
            with parent.child("shard.execute", shard=shard) as span:
                with activate(span):
                    traced = (
                        getattr(child, "execute_traced", None)
                        if span.enabled
                        else None
                    )
                    if traced is not None:
                        # Process-substrate child: the worker builds its
                        # own span subtree and ships it back over the
                        # pipe RPC.
                        rows, worker_span = traced(sql, **extra)
                        span.graft(worker_span)
                    else:
                        rows = child.execute(sql, **extra)
                execution = getattr(child, "last_execution", None)
                batches = getattr(execution, "batches", 0) if execution else 0
                span.set(rows=len(rows), batches=batches)
            return shard, rows, batches

        results = self._parallel.map_partitions(one, len(targets))
        if len(results) == 1:
            merged = results[0][1]
        elif route.dedup_root:
            # Per-shard results are locally deduplicated; identical rows
            # may still surface from several shards (the output need not
            # contain the shard key), so merge through one global
            # seen-set, preserving first-seen order for determinism.
            merged = list(
                dict.fromkeys(
                    row for _shard, rows, _batches in results for row in rows
                )
            )
        else:
            # Duplicate-preserving roots: contributing rows partition
            # across shards, so concatenation is the exact multiset.
            merged = [
                row for _shard, rows, _batches in results for row in rows
            ]
        stats = ShardExecutionStats(
            route=route.kind,
            shards_touched=tuple(targets),
            rows=len(merged),
            batches=sum(batches for _shard, _rows, batches in results),
            workers=self._parallel.workers,
            per_shard=[
                {"shard": shard, "rows": len(rows)}
                for shard, rows, _batches in results
            ],
        )
        return merged, stats

    def _execute_gather(
        self, sql: str, route: ShardRoute, parent=NO_SPAN
    ) -> Tuple[List[Row], ShardExecutionStats]:
        with self._coordinator_lock:
            self._ensure_gathered(route.tables, parent)
            with parent.child("gather.execute") as span:
                rows = self._coordinator.execute(sql)
                execution = self._coordinator.last_execution
                span.set(
                    rows=len(rows),
                    batches=execution.batches if execution else 0,
                )
            stats = ShardExecutionStats(
                route="gather",
                shards_touched=tuple(range(self.shards)),
                rows=len(rows),
                batches=execution.batches if execution else 0,
            )
        return rows, stats

    def _ensure_gathered(self, tables: Sequence[str], parent=NO_SPAN) -> None:
        """Materialize fresh coordinator copies of *tables* (coordinator
        lock held). Each stale table is scanned shard-parallel and
        reloaded; warm copies (no write since the last gather) are free.

        Every cold gather is counted in the transfer telemetry
        (``gather_tables`` / ``gather_rows`` / ``gather_cells`` /
        ``gather_bytes``): the gather route invisibly ships whole table
        copies to the coordinator, and these counters make that cost
        measurable (bytes estimated at 8 per cell, the int64 wire
        width).
        """
        for name in tables:
            columns, _key, indexes = self._table_entry(name)
            version = self._table_versions.get(name, 0)
            if self._gathered.get(name) == version:
                continue
            with parent.child("gather.table", table=name) as span:
                scan = f"SELECT {', '.join(columns)} FROM {name}"
                slices = self._parallel.map_partitions(
                    lambda shard: self.children[shard].execute(scan),
                    self.shards,
                )
                self._coordinator.create_table(name, columns)
                for slice_rows in slices:
                    self._coordinator.insert_many(name, slice_rows)
                for index_columns in indexes:
                    self._coordinator.create_index(name, index_columns)
                self._coordinator.analyze(name)
                self._gathered[name] = version
                transferred_rows = sum(len(rows) for rows in slices)
                cells = transferred_rows * len(columns)
                span.set(rows=transferred_rows, est_bytes=cells * 8)
            with self._telemetry_lock:
                self._counters["gather_tables"] += 1
                self._counters["gather_rows"] += transferred_rows
                self._counters["gather_cells"] += cells
                self._counters["gather_bytes"] += cells * 8
            registry = get_registry()
            registry.inc("repro.shards.gather.tables")
            registry.inc("repro.shards.gather.rows", transferred_rows)
            registry.inc("repro.shards.gather.bytes", cells * 8)

    # ------------------------------------------------------------------
    # Cost estimation and EXPLAIN
    # ------------------------------------------------------------------
    def estimated_cost(self, sql: str) -> float:
        """Route-aware estimate: pruned probes cost the target shards'
        own estimates, scatter costs the largest shard plus per-shard
        fan-out overhead, gather additionally pays per-row transfer of
        every referenced table."""
        self._check_length(sql)
        route = self.plan_route(sql)
        params = self.cost_parameters
        if route.kind == "gather":
            with self._coordinator_lock:
                transfer = sum(
                    self._coordinator.catalog.statistics(name).cardinality
                    for name in route.tables
                    if self._coordinator.catalog.has_table(name)
                )
                base = self._coordinator.estimated_cost(sql)
            return base + transfer * params.gather_transfer_per_row
        if route.kind == "pruned":
            return sum(
                self.children[shard].estimated_cost(sql)
                for shard in route.shards
            ) + params.pruned_probe_overhead * len(route.shards)
        probe = self.children[self._find_largest_shard()].estimated_cost(sql)
        return probe + params.scatter_overhead_per_shard * self.shards

    def _find_largest_shard(self) -> int:
        """The shard holding the most rows (representative for scatter
        estimates — scatter wall clock is the slowest shard's)."""
        if self._largest_shard is None:
            with self._schema_lock:
                names = list(self._schema)
            totals = [0] * self.shards
            for name in names:
                for shard, child in enumerate(self.children):
                    stats = child.table_statistics(name)
                    if stats is not None:
                        totals[shard] += stats.cardinality
            self._largest_shard = max(range(self.shards), key=totals.__getitem__)
        return self._largest_shard

    def explain_text(self, sql: str, analyze: bool = False) -> str:
        """The shard route plus the representative child (or
        coordinator) plan; ``analyze=True`` executes on the
        representative target and shows measured vs. estimated numbers
        per node (``EXPLAIN ANALYZE``)."""
        route = self.plan_route(sql)
        touched = route.shards if route.kind != "gather" else ()
        header = (
            f"Shard route: {route.kind} -> "
            + (
                f"shards {list(touched)} of {self.shards}"
                if route.kind != "gather"
                else f"coordinator (gathered from all {self.shards} shards)"
            )
            + f" [tables: {', '.join(route.tables) or '-'}]"
        )
        if route.kind == "gather":
            if analyze:
                # ANALYZE must measure a real execution, so it pays the
                # gather a plain EXPLAIN deliberately skips. Barrier
                # before coordinator lock — the same order the write
                # path uses.
                with self._barrier.shared():
                    with self._coordinator_lock:
                        self._ensure_gathered(route.tables)
                        detail = self._coordinator.explain_analyze(sql).text
            else:
                # Plan from the merged statistics alone — the
                # coordinator's catalog always carries them, so EXPLAIN
                # never pays the O(data) gather an execution would (the
                # statement cache is version-keyed, so a later execute
                # re-plans over real rows).
                with self._coordinator_lock:
                    detail = self._coordinator.explain(sql).text
        else:
            child = self.children[touched[0]]
            explain = getattr(child, "explain_text", None)
            if explain is None:
                detail = ""
            elif analyze:
                try:
                    detail = explain(sql, analyze=True)
                except TypeError:  # child without the analyze mode
                    detail = explain(sql)
            else:
                detail = explain(sql)
        return f"{header}\n{detail}" if detail else header

    # ------------------------------------------------------------------
    # Statistics and telemetry
    # ------------------------------------------------------------------
    def table_statistics(self, table: str):
        """Whole-table statistics merged across the shards."""
        if not self._coordinator.catalog.has_table(table):
            return None
        return self._coordinator.catalog.statistics(table)

    #: shard_telemetry's historical flat keys and their canonical metric
    #: names (the ``docs/OBSERVABILITY.md`` catalog). Both spellings are
    #: returned; the flat keys are **deprecated aliases** kept for one
    #: release.
    TELEMETRY_ALIASES = {
        "executions": "shards.executions",
        "pruned": "shards.route.pruned",
        "scatter": "shards.route.scatter",
        "gather": "shards.route.gather",
        "gather_tables": "shards.gather.tables",
        "gather_rows": "shards.gather.rows",
        "gather_cells": "shards.gather.cells",
        "gather_bytes": "shards.gather.bytes",
        "shards": "shards.count",
        "shm_results": "shards.shm.results",
        "shm_bytes": "shards.shm.bytes",
        "inline_results": "shards.inline.results",
        "worker_restarts": "worker.restarts",
        "rpc_retries": "rpc.retries",
        "rpc_deadline_exceeded": "rpc.deadline_exceeded",
        "circuit_trips": "circuit.trips",
        "circuit_recoveries": "circuit.recoveries",
        "circuit_open_shards": "circuit.open_shards",
        "degraded_executions": "worker.degraded.executions",
    }

    def shard_telemetry(self) -> Dict[str, int]:
        """Cumulative route and gather-transfer counters (plus the shard
        count; on the process substrate, also the shared-memory exchange
        counters summed over the workers).

        Every counter appears under two keys: its canonical dotted
        metric name (``shards.route.pruned``, ...) and the historical
        flat key (``pruned``, ...), the latter a deprecated alias kept
        for one release — see :data:`TELEMETRY_ALIASES`.
        """
        with self._telemetry_lock:
            snapshot = dict(self._counters)
        snapshot["shards"] = self.shards
        if self.substrate == "process":
            snapshot["shm_results"] = sum(
                getattr(child, "shm_results", 0) for child in self.children
            )
            snapshot["shm_bytes"] = sum(
                getattr(child, "shm_bytes", 0) for child in self.children
            )
            snapshot["inline_results"] = sum(
                getattr(child, "inline_results", 0) for child in self.children
            )
        if self._supervisor is not None:
            snapshot.update(self._supervisor.telemetry())
        for old_key, canonical in self.TELEMETRY_ALIASES.items():
            if old_key in snapshot:
                snapshot[canonical] = snapshot[old_key]
        return snapshot

    def metrics_snapshot(self) -> Optional[Dict]:
        """Process-substrate workers' registries, merged into one
        snapshot (one ``metrics`` RPC per worker — the same batching
        shape as ``statistics_many``). ``None`` on in-process
        substrates, whose children record straight into the
        coordinator's own registry."""
        if self.substrate != "process":
            return None
        merged = MetricsRegistry()
        for child in self.children:
            fetch = getattr(child, "metrics_snapshot", None)
            if fetch is not None:
                merged.merge_snapshot(fetch())
        return merged.snapshot()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the children, the coordinator and the pool. Idempotent."""
        self._closed = True
        if self._supervisor is not None:
            # Stops the monitor thread before the workers go down, then
            # closes every supervised worker (their own close is
            # idempotent, so the loop below is harmless).
            self._supervisor.close()
        for child in self.children:
            child.close()
        self._coordinator.close()
        self._parallel.close()

    def _check_length(self, sql: str) -> None:
        if self._closed:
            raise RuntimeError("ShardedBackend is closed")
        if (
            self.max_statement_length is not None
            and len(sql) > self.max_statement_length
        ):
            raise StatementTooLongError(len(sql), self.max_statement_length)
