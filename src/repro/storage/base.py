"""The backend interface both RDBMS substrates implement."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple

from repro.storage.layouts import LayoutData

Row = Tuple


class Backend(ABC):
    """A SQL evaluation engine hosting one loaded layout.

    The two concrete implementations are :class:`SQLiteBackend` (the
    paper's open-source system role) and :class:`MemoryBackend` (the
    commercial-system role, backed by :class:`repro.engine.MiniRDBMS`).
    """

    #: Human-readable backend name (used in benchmark reports).
    name: str = "backend"

    @abstractmethod
    def load(self, data: LayoutData) -> None:
        """Create tables and indexes, insert rows, collect statistics."""

    @abstractmethod
    def execute(self, sql: str) -> List[Row]:
        """Evaluate *sql* and return the result rows."""

    @abstractmethod
    def estimated_cost(self, sql: str) -> float:
        """The backend's own cost estimate for *sql* (the paper's
        "RDBMS cost estimation" — ``explain`` / ``db2expln``)."""

    @abstractmethod
    def insert_rows(self, table: str, rows: List[Row]) -> None:
        """Insert encoded rows into a loaded table (set semantics:
        already-present rows are ignored) and refresh its statistics."""

    @abstractmethod
    def delete_rows(self, table: str, rows: List[Row]) -> int:
        """Delete encoded rows from a loaded table, returning how many
        were actually removed, and refresh its statistics."""

    def apply_changes(
        self,
        inserts: Dict[str, List[Row]],
        deletes: Dict[str, List[Row]],
    ) -> None:
        """Apply a multi-table write **atomically with respect to reads**.

        Both concrete backends override this so a concurrently executing
        query observes either the full pre-write or the full post-write
        state, never a half-applied mix. The base implementation is the
        non-atomic fallback for minimal third-party backends.
        """
        for table, rows in inserts.items():
            self.insert_rows(table, rows)
        for table, rows in deletes.items():
            self.delete_rows(table, rows)

    def metrics_snapshot(self):
        """Metrics this backend holds that the process-wide registry
        cannot see, as a :meth:`repro.obs.metrics.MetricsRegistry.
        snapshot` dict — or ``None``.

        In-process backends record straight into the coordinator's
        registry and return ``None`` (the default). Backends hosting
        work in *other processes* (the sharded backend on the process
        substrate) override this to fetch and merge their workers'
        registries, so :meth:`repro.obda.system.OBDASystem.metrics`
        reports one unified view.
        """
        return None

    def table_statistics(self, table: str):
        """Optimizer statistics for one loaded table, or ``None``.

        Returns a :class:`repro.engine.catalog.TableStats` where the
        backend keeps one (both built-ins do). Sharded storage merges
        these per-shard statistics into whole-table statistics for its
        coordinator planner; ``None`` simply opts a backend out.
        """
        return None

    def close(self) -> None:
        """Release any resources held by the backend.

        Idempotent. The default is a no-op for purely in-process
        backends; :class:`SQLiteBackend` overrides it to close its
        connection.
        """

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
