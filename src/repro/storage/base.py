"""The backend interface both RDBMS substrates implement."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

from repro.storage.layouts import LayoutData

Row = Tuple


class Backend(ABC):
    """A SQL evaluation engine hosting one loaded layout.

    The two concrete implementations are :class:`SQLiteBackend` (the
    paper's open-source system role) and :class:`MemoryBackend` (the
    commercial-system role, backed by :class:`repro.engine.MiniRDBMS`).
    """

    #: Human-readable backend name (used in benchmark reports).
    name: str = "backend"

    @abstractmethod
    def load(self, data: LayoutData) -> None:
        """Create tables and indexes, insert rows, collect statistics."""

    @abstractmethod
    def execute(self, sql: str) -> List[Row]:
        """Evaluate *sql* and return the result rows."""

    @abstractmethod
    def estimated_cost(self, sql: str) -> float:
        """The backend's own cost estimate for *sql* (the paper's
        "RDBMS cost estimation" — ``explain`` / ``db2expln``)."""

    def close(self) -> None:
        """Release any resources held by the backend.

        Idempotent. The default is a no-op for purely in-process
        backends; :class:`SQLiteBackend` overrides it to close its
        connection.
        """

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
