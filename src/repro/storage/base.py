"""The backend interface both RDBMS substrates implement."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from repro.storage.layouts import LayoutData, TableSpec

Row = Tuple


class BulkLoader:
    """A streaming bulk-ingest session on one backend.

    The fast path for loading millions of rows: tables are declared
    up-front, row batches stream in through :meth:`append` with **no**
    per-row dedup or index maintenance, and :meth:`finish` performs one
    dedup pass, one index build per declared index, and one statistics
    build. The loaded result is indistinguishable from an equivalent
    :meth:`Backend.load` / ``insert_rows`` sequence — only cheaper.

    Sessions replace the backend's current contents (like ``load``) and
    hold the backend exclusively: queries must not run between the first
    ``create_table`` and ``finish``. Use as a context manager — a clean
    exit finishes the load, an exception aborts it::

        with backend.bulk_load() as loader:
            loader.create_table("r_p", ("s", "o"), indexes=(("s",),))
            for batch in batches:
                loader.append("r_p", batch)

    This base class implements the protocol by buffering everything and
    delegating to :meth:`Backend.load` at the end — the correctness
    fallback for minimal backends. Concrete backends subclass it with
    genuinely deferred index/statistics construction.
    """

    def __init__(self, backend: "Backend") -> None:
        self._backend = backend
        self._specs: Dict[str, TableSpec] = {}
        self._rows: Dict[str, List[Row]] = {}
        self._done = False

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        indexes: Sequence[Sequence[str]] = (),
        shard_key: Optional[str] = None,
    ) -> None:
        """Declare a table of the new dataset (replacing any old one).

        *indexes* are built once, at :meth:`finish` — never during the
        append stream.
        """
        self._check_open()
        if name in self._specs:
            raise ValueError(f"table {name!r} declared twice in bulk load")
        self._specs[name] = TableSpec(
            name=name,
            columns=tuple(columns),
            rows=[],
            indexes=tuple(tuple(ix) for ix in indexes),
            shard_key=shard_key,
        )
        self._rows[name] = []

    def append(self, table: str, rows: Sequence[Row]) -> None:
        """Stream one batch of rows into a declared table."""
        self._check_open()
        if table not in self._specs:
            raise KeyError(f"bulk load into undeclared table {table!r}")
        # Normalize to tuples without re-wrapping the (overwhelmingly
        # common) already-tuple rows — this runs once per stored row.
        self._append(
            table,
            [row if type(row) is tuple else tuple(row) for row in rows],
        )

    def finish(self) -> None:
        """Dedup, build indexes and statistics, and publish the dataset.

        Idempotent once called; the session is unusable afterwards.
        """
        self._check_open()
        self._done = True
        self._finish()

    def abort(self) -> None:
        """Drop the session without publishing (backend state is
        implementation-defined afterwards — reload before querying)."""
        if self._done:
            return
        self._done = True
        self._abort()

    def _check_open(self) -> None:
        if self._done:
            raise RuntimeError("bulk load session already finished")

    # -- hooks for concrete loaders --------------------------------
    def _append(self, table: str, rows: List[Row]) -> None:
        self._rows[table].extend(rows)

    def _finish(self) -> None:
        tables = [
            TableSpec(
                name=spec.name,
                columns=spec.columns,
                rows=self._rows[spec.name],
                indexes=spec.indexes,
                shard_key=spec.shard_key,
            )
            for spec in self._specs.values()
        ]
        self._backend.load(LayoutData(tables=tables))

    def _abort(self) -> None:
        self._rows.clear()

    def __enter__(self) -> "BulkLoader":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is None:
            if not self._done:
                self.finish()
        else:
            self.abort()


class Backend(ABC):
    """A SQL evaluation engine hosting one loaded layout.

    The two concrete implementations are :class:`SQLiteBackend` (the
    paper's open-source system role) and :class:`MemoryBackend` (the
    commercial-system role, backed by :class:`repro.engine.MiniRDBMS`).
    """

    #: Human-readable backend name (used in benchmark reports).
    name: str = "backend"

    @abstractmethod
    def load(self, data: LayoutData) -> None:
        """Create tables and indexes, insert rows, collect statistics."""

    @abstractmethod
    def execute(self, sql: str) -> List[Row]:
        """Evaluate *sql* and return the result rows."""

    @abstractmethod
    def estimated_cost(self, sql: str) -> float:
        """The backend's own cost estimate for *sql* (the paper's
        "RDBMS cost estimation" — ``explain`` / ``db2expln``)."""

    @abstractmethod
    def insert_rows(self, table: str, rows: List[Row]) -> None:
        """Insert encoded rows into a loaded table (set semantics:
        already-present rows are ignored) and refresh its statistics."""

    @abstractmethod
    def delete_rows(self, table: str, rows: List[Row]) -> int:
        """Delete encoded rows from a loaded table, returning how many
        were actually removed, and refresh its statistics."""

    def apply_changes(
        self,
        inserts: Dict[str, List[Row]],
        deletes: Dict[str, List[Row]],
    ) -> None:
        """Apply a multi-table write **atomically with respect to reads**.

        Both concrete backends override this so a concurrently executing
        query observes either the full pre-write or the full post-write
        state, never a half-applied mix. The base implementation is the
        non-atomic fallback for minimal third-party backends.
        """
        for table, rows in inserts.items():
            self.insert_rows(table, rows)
        for table, rows in deletes.items():
            self.delete_rows(table, rows)

    def bulk_load(self) -> BulkLoader:
        """Open a streaming bulk-ingest session (see :class:`BulkLoader`).

        The session replaces the backend's contents. Concrete backends
        override this to return loaders with genuinely deferred index
        and statistics construction; the default buffers and delegates
        to :meth:`load`.
        """
        return BulkLoader(self)

    def metrics_snapshot(self):
        """Metrics this backend holds that the process-wide registry
        cannot see, as a :meth:`repro.obs.metrics.MetricsRegistry.
        snapshot` dict — or ``None``.

        In-process backends record straight into the coordinator's
        registry and return ``None`` (the default). Backends hosting
        work in *other processes* (the sharded backend on the process
        substrate) override this to fetch and merge their workers'
        registries, so :meth:`repro.obda.system.OBDASystem.metrics`
        reports one unified view.
        """
        return None

    def table_statistics(self, table: str):
        """Optimizer statistics for one loaded table, or ``None``.

        Returns a :class:`repro.engine.catalog.TableStats` where the
        backend keeps one (both built-ins do). Sharded storage merges
        these per-shard statistics into whole-table statistics for its
        coordinator planner; ``None`` simply opts a backend out.
        """
        return None

    def close(self) -> None:
        """Release any resources held by the backend.

        Idempotent. The default is a no-op for purely in-process
        backends; :class:`SQLiteBackend` overrides it to close its
        connection.
        """

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
