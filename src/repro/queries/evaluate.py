"""A naive, trusted in-memory evaluator for every query dialect.

This evaluator is *not* the RDBMS substrate of the reproduction — it is the
reference oracle the test-suite uses to validate reformulations, SQL
translation and both database backends. It evaluates queries over a plain
fact store ``{predicate: set of tuples}`` with set semantics.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.queries.atoms import Atom
from repro.queries.cq import CQ
from repro.queries.jucq import JUCQ, JUSCQ, component_head
from repro.queries.scq import SCQ, USCQ
from repro.queries.terms import Term, Variable, is_variable
from repro.queries.ucq import UCQ

FactStore = Mapping[str, Set[Tuple]]
Row = Tuple
Binding = Dict[Variable, object]


def evaluate_cq(query: CQ, facts: FactStore) -> Set[Row]:
    """All answers of *query* over *facts* (set semantics)."""
    answers: Set[Row] = set()
    for binding in _match_atoms(list(query.atoms), {}, facts):
        row = tuple(_value(term, binding) for term in query.head)
        answers.add(row)
    return answers


def _value(term: Term, binding: Binding):
    if is_variable(term):
        return binding[term]
    return term.value


def _match_atoms(
    atoms: List[Atom],
    binding: Binding,
    facts: FactStore,
) -> Iterable[Binding]:
    if not atoms:
        yield binding
        return
    # Most-bound atom first keeps the search narrow.
    def boundness(atom: Atom) -> int:
        return sum(
            1
            for t in atom.args
            if not is_variable(t) or t in binding
        )

    pick = max(range(len(atoms)), key=lambda i: boundness(atoms[i]))
    atom = atoms[pick]
    rest = atoms[:pick] + atoms[pick + 1 :]
    for row in facts.get(atom.predicate, ()):  # type: ignore[arg-type]
        if len(row) != atom.arity:
            continue
        extended = _try_extend(atom, row, binding)
        if extended is not None:
            yield from _match_atoms(rest, extended, facts)


def _try_extend(atom: Atom, row: Row, binding: Binding) -> Optional[Binding]:
    extended = dict(binding)
    for term, value in zip(atom.args, row):
        if is_variable(term):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
        elif term.value != value:
            return None
    return extended


def evaluate_ucq(query: UCQ, facts: FactStore) -> Set[Row]:
    """Union of the disjuncts' answers."""
    answers: Set[Row] = set()
    for disjunct in query.disjuncts:
        answers |= evaluate_cq(disjunct, facts)
    return answers


def _evaluate_components(
    head: Tuple[Term, ...],
    components,
    component_answers: List[Set[Row]],
) -> Set[Row]:
    """Natural-join component answer sets on shared head variable names."""
    heads = [component_head(c) for c in components]
    # Seed: bindings from the first component.
    bindings: List[Binding] = []
    for row in component_answers[0]:
        binding = _row_to_binding(heads[0], row)
        if binding is not None:
            bindings.append(binding)
    for head_terms, answers in zip(heads[1:], component_answers[1:]):
        joined: List[Binding] = []
        for binding in bindings:
            for row in answers:
                merged = _merge_binding(binding, head_terms, row)
                if merged is not None:
                    joined.append(merged)
        bindings = joined
        if not bindings:
            break
    results: Set[Row] = set()
    for binding in bindings:
        try:
            results.add(tuple(_value(term, binding) for term in head))
        except KeyError as missing:
            raise ValueError(
                f"projection variable {missing} not exported by any component"
            ) from missing
    return results


def _row_to_binding(head_terms: Tuple[Term, ...], row: Row) -> Optional[Binding]:
    binding: Binding = {}
    for term, value in zip(head_terms, row):
        if is_variable(term):
            bound = binding.get(term)
            if bound is None:
                binding[term] = value
            elif bound != value:
                return None
        elif term.value != value:
            return None
    return binding


def _merge_binding(
    binding: Binding, head_terms: Tuple[Term, ...], row: Row
) -> Optional[Binding]:
    merged = dict(binding)
    for term, value in zip(head_terms, row):
        if is_variable(term):
            bound = merged.get(term)
            if bound is None:
                merged[term] = value
            elif bound != value:
                return None
        elif term.value != value:
            return None
    return merged


def evaluate_scq(query: SCQ, facts: FactStore) -> Set[Row]:
    """Evaluate each block as a UCQ, then natural-join the blocks."""
    block_answers = [evaluate_ucq(block, facts) for block in query.blocks]
    return _evaluate_components(query.head, list(query.blocks), block_answers)


def evaluate_uscq(query: USCQ, facts: FactStore) -> Set[Row]:
    """Union of the member SCQs' answers."""
    answers: Set[Row] = set()
    for scq in query.scqs:
        answers |= evaluate_scq(scq, facts)
    return answers


def evaluate_jucq(query: JUCQ, facts: FactStore) -> Set[Row]:
    """Evaluate components then natural-join on shared head names."""
    component_answers = [evaluate_ucq(c, facts) for c in query.components]
    return _evaluate_components(query.head, list(query.components), component_answers)


def evaluate_juscq(query: JUSCQ, facts: FactStore) -> Set[Row]:
    """Evaluate USCQ components then natural-join on shared head names."""
    component_answers = [evaluate_uscq(c, facts) for c in query.components]
    heads = [c.scqs[0].head for c in query.components]

    class _Shim:
        def __init__(self, head):
            self.head = head

    shims = [_Shim(h) for h in heads]
    return _evaluate_components(query.head, shims, component_answers)


def evaluate(query, facts: FactStore) -> Set[Row]:
    """Dispatch on the dialect of *query*."""
    if isinstance(query, CQ):
        return evaluate_cq(query, facts)
    if isinstance(query, SCQ):
        return evaluate_scq(query, facts)
    if isinstance(query, USCQ):
        return evaluate_uscq(query, facts)
    if isinstance(query, UCQ):
        return evaluate_ucq(query, facts)
    if isinstance(query, JUCQ):
        return evaluate_jucq(query, facts)
    if isinstance(query, JUSCQ):
        return evaluate_juscq(query, facts)
    raise TypeError(f"unsupported query dialect: {type(query).__name__}")
