"""Joins of UCQs (JUCQs) and joins of USCQs (JUSCQs).

These are the dialects produced by cover-based reformulation (Definition 3
of the paper): each cover fragment is reformulated into a UCQ (or USCQ), and
the fragment reformulations are joined on their shared head variables:

    q(x) <- UCQ1(x1) AND ... AND UCQn(xn)

Join conditions are implicit by variable-name equality across component
heads; the final projection is ``head``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.queries.cq import CQ
from repro.queries.scq import USCQ
from repro.queries.substitution import Substitution
from repro.queries.terms import Term, Variable, is_variable
from repro.queries.ucq import UCQ


def expand_components(
    head: Tuple[Term, ...],
    components: Sequence,
    name: str,
) -> List[CQ]:
    """Distribute joins over unions: the UCQ equivalent of a join of unions.

    Each component exposes ``disjuncts`` (an iterable of CQs) and a head.
    A combination picks one disjunct per component; the disjunct bodies are
    concatenated after renaming each disjunct's head to the *component* head
    (so cross-component joins connect) and renaming existential variables
    apart (so they never capture each other).
    """
    combinations: List[List[CQ]] = [[]]
    for component in components:
        extended: List[List[CQ]] = []
        for prefix in combinations:
            for disjunct in component.disjuncts:
                extended.append(prefix + [(component, disjunct)])
        combinations = extended

    expanded: List[CQ] = []
    for combination in combinations:
        atoms = []
        taken: set = set()
        for component, disjunct in combination:
            # Rename the disjunct head onto the component head so that the
            # implicit join by name is realized structurally.
            mapping: Dict[Variable, Term] = {}
            ok = True
            for disjunct_term, component_term in zip(disjunct.head, component_head(component)):
                if is_variable(disjunct_term):
                    bound = mapping.get(disjunct_term)
                    if bound is None:
                        mapping[disjunct_term] = component_term
                    elif bound != component_term:
                        ok = False
                        break
                elif disjunct_term != component_term:
                    ok = False
                    break
            if not ok:
                break
            renamed = disjunct.apply(Substitution(mapping))
            renamed = renamed.rename_apart(taken)
            taken |= renamed.variables()
            atoms.extend(renamed.atoms)
        else:
            expanded.append(CQ(head=head, atoms=tuple(atoms), name=name))
    return expanded


def component_head(component) -> Tuple[Term, ...]:
    """The exported head terms of a JUCQ/SCQ component.

    UCQ components do not carry an explicit head; their disjuncts share an
    arity and the *first* disjunct's head names are taken as the exported
    names (the reformulation code constructs components so that every
    disjunct uses identical head names).
    """
    if hasattr(component, "head"):
        return component.head
    return component.disjuncts[0].head


@dataclass(frozen=True)
class JUCQ:
    """A join of UCQ components projected on ``head``."""

    head: Tuple[Term, ...]
    components: Tuple[UCQ, ...]
    name: str = "q_jucq"

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a JUCQ must have at least one component")

    def __iter__(self) -> Iterator[UCQ]:
        return iter(self.components)

    def __len__(self) -> int:
        return len(self.components)

    def component_heads(self) -> List[Tuple[Term, ...]]:
        """The exported head of each component, in order."""
        return [component_head(c) for c in self.components]

    def expand(self) -> List[CQ]:
        """Equivalent UCQ (distribute the join over the component unions)."""
        return expand_components(self.head, self.components, self.name)

    def total_disjuncts(self) -> int:
        """Sum of component union sizes (a size measure for reporting)."""
        return sum(len(c) for c in self.components)

    def __str__(self) -> str:
        head_render = ", ".join(str(t) for t in self.head)
        parts = "\n AND ".join(f"[{c}]" for c in self.components)
        return f"{self.name}({head_render}) <-\n {parts}"


@dataclass(frozen=True)
class JUSCQ:
    """A join of USCQ components projected on ``head``."""

    head: Tuple[Term, ...]
    components: Tuple[USCQ, ...]
    name: str = "q_juscq"

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a JUSCQ must have at least one component")

    def __iter__(self) -> Iterator[USCQ]:
        return iter(self.components)

    def __len__(self) -> int:
        return len(self.components)

    def expand(self) -> List[CQ]:
        """Equivalent UCQ via per-component expansion then join distribution."""
        expanded_components = []
        for component in self.components:
            head = component.scqs[0].head
            expanded_components.append(
                UCQ(tuple(component.expand()), name=component.name)
            )
        return expand_components(self.head, expanded_components, self.name)

    def __str__(self) -> str:
        head_render = ", ".join(str(t) for t in self.head)
        parts = "\n AND ".join(f"[{c}]" for c in self.components)
        return f"{self.name}({head_render}) <-\n {parts}"
