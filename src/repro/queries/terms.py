"""Terms of first-order queries: variables and constants.

Terms are immutable and hashable so that atoms, conjunctive queries and
whole reformulations can be deduplicated by value. Variables compare by
name; constants compare by value. A global, thread-safe counter backs
:func:`fresh_variable`, used by the reformulation engine whenever a new
non-distinguished variable is required (e.g. when expanding ``A <= exists R``
backward into ``R(x, fresh)``).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Variable:
    """A first-order variable, identified by its name.

    Variable names beginning with an underscore are *anonymous*: they are
    produced by :func:`fresh_variable` and play the role of the ``_``
    placeholder (unbound variable) of the PerfectRef algorithm.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    @property
    def is_anonymous(self) -> bool:
        """True when the variable was generated as a fresh placeholder."""
        return self.name.startswith("_")


@dataclass(frozen=True, order=True)
class Constant:
    """A first-order constant (an ABox individual or a literal value)."""

    value: Union[str, int]

    def __str__(self) -> str:
        return f"<{self.value}>" if isinstance(self.value, str) else str(self.value)


Term = Union[Variable, Constant]

_fresh_counter = itertools.count()
_fresh_lock = threading.Lock()


def fresh_variable(prefix: str = "_v") -> Variable:
    """Return a variable guaranteed distinct from all previously created ones.

    The default prefix starts with an underscore so fresh variables are
    anonymous (see :attr:`Variable.is_anonymous`).
    """
    with _fresh_lock:
        index = next(_fresh_counter)
    return Variable(f"{prefix}{index}")


def is_variable(term: Term) -> bool:
    """True iff *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """True iff *term* is a :class:`Constant`."""
    return isinstance(term, Constant)
