"""Substitutions: finite mappings from variables to terms.

A substitution is applied to terms, atoms and conjunctive queries. It is
kept immutable; composition returns a new substitution. Following the
standard convention, applying ``s1.compose(s2)`` is equivalent to applying
``s1`` first and then ``s2``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.queries.atoms import Atom
from repro.queries.terms import Term, Variable, is_variable


class Substitution:
    """An immutable mapping ``Variable -> Term``."""

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Variable, Term] | None = None) -> None:
        items: Dict[Variable, Term] = {}
        if mapping:
            for var, term in mapping.items():
                if not isinstance(var, Variable):
                    raise TypeError(f"substitution keys must be variables, got {var!r}")
                if term != var:
                    items[var] = term
        self._mapping = items

    @classmethod
    def identity(cls) -> "Substitution":
        """The empty substitution."""
        return cls()

    def __bool__(self) -> bool:
        return bool(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._mapping == other._mapping

    def __repr__(self) -> str:
        pairs = ", ".join(f"{var} -> {term}" for var, term in self.items())
        return f"{{{pairs}}}"

    def items(self) -> Iterable[Tuple[Variable, Term]]:
        """Iterate over the (variable, image) pairs."""
        return self._mapping.items()

    def get(self, var: Variable) -> Term:
        """Image of *var*, or *var* itself when unmapped."""
        return self._mapping.get(var, var)

    def apply_term(self, term: Term) -> Term:
        """Apply the substitution to a single term."""
        if is_variable(term):
            return self._mapping.get(term, term)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the substitution to every argument of *atom*."""
        return Atom(atom.predicate, tuple(self.apply_term(t) for t in atom.args))

    def apply_atoms(self, atoms: Iterable[Atom]) -> Tuple[Atom, ...]:
        """Apply the substitution to a sequence of atoms, preserving order."""
        return tuple(self.apply_atom(a) for a in atoms)

    def compose(self, later: "Substitution") -> "Substitution":
        """Return the substitution equivalent to applying *self* then *later*."""
        combined: Dict[Variable, Term] = {
            var: later.apply_term(term) for var, term in self._mapping.items()
        }
        for var, term in later.items():
            if var not in self._mapping:
                combined[var] = term
        return Substitution(combined)

    def bind(self, var: Variable, term: Term) -> "Substitution":
        """Return a new substitution extended with ``var -> term``."""
        extended = dict(self._mapping)
        extended[var] = term
        return Substitution(extended)

    def domain(self) -> frozenset:
        """The set of variables the substitution actually moves."""
        return frozenset(self._mapping)
