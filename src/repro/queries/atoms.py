"""Query atoms: unary (concept) and binary (role) predicates over terms.

DL-LiteR queries only ever contain two shapes of atoms:

* ``A(t)`` — a *concept atom*, where ``A`` is a concept name, and
* ``R(t, t')`` — a *role atom*, where ``R`` is a role name.

Both are represented by :class:`Atom`, which stores the predicate name and
the argument tuple. Arity is derived from the arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.queries.terms import Term, Variable, is_variable


@dataclass(frozen=True, order=True)
class Atom:
    """An atom ``predicate(args...)`` with arity 1 or 2."""

    predicate: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.args) not in (1, 2):
            raise ValueError(
                f"atoms must be unary or binary, got arity {len(self.args)} "
                f"for predicate {self.predicate!r}"
            )

    @property
    def arity(self) -> int:
        """Number of arguments (1 for concept atoms, 2 for role atoms)."""
        return len(self.args)

    @property
    def is_concept_atom(self) -> bool:
        """True for unary atoms ``A(t)``."""
        return self.arity == 1

    @property
    def is_role_atom(self) -> bool:
        """True for binary atoms ``R(t, t')``."""
        return self.arity == 2

    def variables(self) -> Iterator[Variable]:
        """Yield the variables among the arguments, in position order."""
        for term in self.args:
            if is_variable(term):
                yield term

    def __str__(self) -> str:
        rendered = ", ".join(str(term) for term in self.args)
        return f"{self.predicate}({rendered})"


def concept_atom(concept_name: str, term: Term) -> Atom:
    """Build the unary atom ``concept_name(term)``."""
    return Atom(concept_name, (term,))


def role_atom(role_name: str, subject: Term, obj: Term) -> Atom:
    """Build the binary atom ``role_name(subject, obj)``."""
    return Atom(role_name, (subject, obj))
