"""Homomorphisms between conjunctive queries; containment and equivalence.

``q1`` is *contained in* ``q2`` (every answer of ``q1`` is an answer of
``q2``, over every database) iff there is a homomorphism from ``q2`` into the
canonical database of ``q1``: a mapping of ``q2``'s variables to ``q1``'s
terms sending every atom of ``q2`` onto an atom of ``q1`` and the head of
``q2`` onto the head of ``q1`` positionwise (Chandra & Merlin).

The search is a backtracking join ordered most-constrained-atom-first, which
is fast in practice for the small CQs produced by reformulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.queries.atoms import Atom
from repro.queries.cq import CQ
from repro.queries.terms import Term, Variable, is_variable


def find_homomorphism(source: CQ, target: CQ) -> Optional[Dict[Variable, Term]]:
    """A homomorphism from *source* into *target*, or None.

    The mapping sends source variables to target terms; constants map to
    themselves; the source head must map positionwise onto the target head.
    """
    if len(source.head) != len(target.head):
        return None

    mapping: Dict[Variable, Term] = {}
    for source_term, target_term in zip(source.head, target.head):
        if is_variable(source_term):
            bound = mapping.get(source_term)
            if bound is None:
                mapping[source_term] = target_term
            elif bound != target_term:
                return None
        elif source_term != target_term:
            return None

    atoms_by_predicate: Dict[Tuple[str, int], List[Atom]] = {}
    for atom in target.atoms:
        atoms_by_predicate.setdefault((atom.predicate, atom.arity), []).append(atom)

    # Order source atoms: those with the fewest candidate target atoms first,
    # re-sorted dynamically as variables get bound.
    pending = list(source.atoms)

    def candidates(atom: Atom, current: Dict[Variable, Term]) -> List[Atom]:
        options = atoms_by_predicate.get((atom.predicate, atom.arity), [])
        viable = []
        for candidate in options:
            if _atom_matches(atom, candidate, current) is not None:
                viable.append(candidate)
        return viable

    def search(remaining: List[Atom], current: Dict[Variable, Term]) -> Optional[Dict[Variable, Term]]:
        if not remaining:
            return current
        # Most constrained first.
        scored = sorted(
            range(len(remaining)),
            key=lambda i: len(candidates(remaining[i], current)),
        )
        pick = scored[0]
        atom = remaining[pick]
        rest = remaining[:pick] + remaining[pick + 1 :]
        for candidate in atoms_by_predicate.get((atom.predicate, atom.arity), []):
            extended = _atom_matches(atom, candidate, current)
            if extended is None:
                continue
            result = search(rest, extended)
            if result is not None:
                return result
        return None

    return search(pending, mapping)


def _atom_matches(
    source_atom: Atom,
    target_atom: Atom,
    mapping: Dict[Variable, Term],
) -> Optional[Dict[Variable, Term]]:
    """Try to extend *mapping* so that source_atom maps onto target_atom."""
    extended = dict(mapping)
    for source_term, target_term in zip(source_atom.args, target_atom.args):
        if is_variable(source_term):
            bound = extended.get(source_term)
            if bound is None:
                extended[source_term] = target_term
            elif bound != target_term:
                return None
        elif source_term != target_term:
            return None
    return extended


def is_contained_in(more_specific: CQ, more_general: CQ) -> bool:
    """True iff ``more_specific`` is contained in ``more_general``."""
    return find_homomorphism(more_general, more_specific) is not None


def are_equivalent(first: CQ, second: CQ) -> bool:
    """True iff the two CQs have the same answers on every database."""
    return is_contained_in(first, second) and is_contained_in(second, first)


def contained_in_any(candidate: CQ, others: Sequence[CQ]) -> bool:
    """True iff *candidate* is contained in at least one CQ of *others*."""
    return any(is_contained_in(candidate, other) for other in others)
