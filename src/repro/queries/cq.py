"""Conjunctive queries (CQs), the base dialect of the framework.

A CQ is ``q(x1, ..., xk) <- a1 AND ... AND an`` where the head terms are the
*distinguished* (free) variables and the body is a conjunction of atoms.
Body variables not in the head are existentially quantified.

The class is immutable; reformulation operates by producing new CQs. Two
notions of identity matter here:

* **structural equality** (``==``): same head, same atom tuple;
* **equality modulo variable renaming**: captured by :meth:`CQ.canonical_key`,
  a deterministic normal form used to deduplicate the thousands of CQs that
  the PerfectRef fixpoint generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.queries.atoms import Atom
from repro.queries.substitution import Substitution
from repro.queries.terms import Constant, Term, Variable, is_variable


@dataclass(frozen=True)
class CQ:
    """A conjunctive query with head ``head`` and body ``atoms``."""

    head: Tuple[Term, ...]
    atoms: Tuple[Atom, ...]
    name: str = "q"

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("a CQ must have at least one body atom")
        body_vars = self.variables()
        for term in self.head:
            if is_variable(term) and term not in body_vars:
                raise ValueError(
                    f"head variable {term} does not appear in the body of {self.name}"
                )

    # ------------------------------------------------------------------
    # Variable structure
    # ------------------------------------------------------------------
    def variables(self) -> FrozenSet[Variable]:
        """All variables appearing in the body."""
        return frozenset(v for atom in self.atoms for v in atom.variables())

    def head_variables(self) -> FrozenSet[Variable]:
        """Variables appearing in the head (the distinguished variables)."""
        return frozenset(t for t in self.head if is_variable(t))

    def existential_variables(self) -> FrozenSet[Variable]:
        """Body variables not exported by the head."""
        return self.variables() - self.head_variables()

    def occurrence_counts(self) -> Dict[Variable, int]:
        """Number of occurrences of each variable across body atom positions."""
        counts: Dict[Variable, int] = {}
        for atom in self.atoms:
            for term in atom.args:
                if is_variable(term):
                    counts[term] = counts.get(term, 0) + 1
        return counts

    def unbound_variables(self) -> FrozenSet[Variable]:
        """Variables playing the role of ``_`` in PerfectRef.

        A variable is *unbound* when it occurs exactly once in the body and
        is not distinguished; such a variable carries no join or output
        obligation, which is what makes certain backward constraint
        applications legal.
        """
        head_vars = self.head_variables()
        return frozenset(
            var
            for var, count in self.occurrence_counts().items()
            if count == 1 and var not in head_vars
        )

    # ------------------------------------------------------------------
    # Graph structure
    # ------------------------------------------------------------------
    def atoms_sharing_variable(self) -> Dict[Variable, List[int]]:
        """Map each variable to the indexes of the atoms it appears in."""
        index: Dict[Variable, List[int]] = {}
        for position, atom in enumerate(self.atoms):
            for var in set(atom.variables()):
                index.setdefault(var, []).append(position)
        return index

    def is_connected(self) -> bool:
        """True when the body atoms form one join-connected component."""
        return len(self.connected_components()) <= 1

    def connected_components(self) -> List[FrozenSet[int]]:
        """Partition atom indexes into join-connected components."""
        adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(self.atoms))}
        for positions in self.atoms_sharing_variable().values():
            for i in positions:
                for j in positions:
                    if i != j:
                        adjacency[i].add(j)
        seen: Set[int] = set()
        components: List[FrozenSet[int]] = []
        for start in range(len(self.atoms)):
            if start in seen:
                continue
            stack = [start]
            component: Set[int] = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(adjacency[node] - component)
            seen |= component
            components.append(frozenset(component))
        return components

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def apply(self, substitution: Substitution) -> "CQ":
        """Apply *substitution* to head and body, returning a new CQ."""
        return CQ(
            head=tuple(substitution.apply_term(t) for t in self.head),
            atoms=substitution.apply_atoms(self.atoms),
            name=self.name,
        )

    def with_atoms(self, atoms: Sequence[Atom]) -> "CQ":
        """Return a copy of this CQ with a replaced body."""
        return CQ(head=self.head, atoms=tuple(atoms), name=self.name)

    def dedup_atoms(self) -> "CQ":
        """Remove syntactically duplicate atoms, preserving first occurrence."""
        seen: Set[Atom] = set()
        kept: List[Atom] = []
        for atom in self.atoms:
            if atom not in seen:
                seen.add(atom)
                kept.append(atom)
        if len(kept) == len(self.atoms):
            return self
        return self.with_atoms(kept)

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def canonical_key(self) -> Tuple[Tuple[Term, ...], Tuple[Atom, ...]]:
        """A deterministic normal form for equality modulo variable renaming.

        Head variables are renamed positionally first; remaining variables
        are renamed greedily while atoms are emitted in lexicographically
        minimal order. Ties between not-yet-named variables are broken by
        order-independent structure — a one-step refinement signature (the
        sorted multiset of the variable's occurrence contexts, each with
        the classes of its co-arguments) plus the repetition pattern
        within the atom — never by atom position, so the key is invariant
        under reordering the body. Two
        CQs with equal keys are isomorphic. (For highly symmetric bodies
        two isomorphic CQs could in principle receive different keys; this
        only causes a harmless duplicate during deduplication, never an
        incorrect merge.)
        """
        renaming: Dict[Variable, Variable] = {}
        for position, term in enumerate(self.head):
            if is_variable(term) and term not in renaming:
                renaming[term] = Variable(f"_h{len(renaming)}")
        fresh_index = 0
        occurrences = self.occurrence_counts()

        def term_class(term: Term) -> Tuple:
            if isinstance(term, Constant):
                return (0, str(term.value))
            if term in renaming:  # head variables only; fixed before the loop
                return (1, renaming[term].name)
            return (2, occurrences[term])

        contexts: Dict[Variable, List[Tuple]] = {}
        for atom in self.atoms:
            for position, term in enumerate(atom.args):
                if is_variable(term) and term not in renaming:
                    contexts.setdefault(term, []).append(
                        (
                            atom.predicate,
                            atom.arity,
                            position,
                            tuple(term_class(t) for t in atom.args),
                        )
                    )
        signature: Dict[Variable, Tuple] = {
            var: tuple(sorted(occurrence_list))
            for var, occurrence_list in contexts.items()
        }

        def atom_rank(atom: Atom) -> Tuple:
            first_seen: Dict[Variable, int] = {}
            ranks: List[Tuple] = []
            for position, term in enumerate(atom.args):
                if isinstance(term, Constant):
                    ranks.append((0, str(term.value)))
                elif term in renaming:
                    ranks.append((1, renaming[term].name))
                else:
                    first_seen.setdefault(term, position)
                    ranks.append((2, signature[term], first_seen[term]))
            return (atom.predicate, atom.arity, tuple(ranks))

        remaining = list(self.atoms)
        ordered: List[Atom] = []
        while remaining:
            best_position = min(
                range(len(remaining)),
                key=lambda i: atom_rank(remaining[i]),
            )
            atom = remaining.pop(best_position)
            for term in atom.args:
                if is_variable(term) and term not in renaming:
                    renaming[term] = Variable(f"_b{fresh_index}")
                    fresh_index += 1
            ordered.append(atom)

        substitution = Substitution(renaming)
        canonical_head = tuple(substitution.apply_term(t) for t in self.head)

        def atom_sort_key(atom: Atom) -> Tuple:
            # Atoms mixing Constants and Variables at one position are not
            # orderable by the dataclass ordering; rank per term class.
            return (
                atom.predicate,
                atom.arity,
                tuple(
                    (0, str(t.value)) if isinstance(t, Constant) else (1, t.name)
                    for t in atom.args
                ),
            )

        canonical_atoms = tuple(
            sorted(substitution.apply_atoms(ordered), key=atom_sort_key)
        )
        return (canonical_head, canonical_atoms)

    def rename_apart(self, taken: Iterable[Variable]) -> "CQ":
        """Rename body variables so none collides with *taken*.

        Head variables are preserved (callers must ensure the head does not
        collide); only existential variables are renamed.
        """
        taken_set = set(taken)
        mapping: Dict[Variable, Variable] = {}
        for var in sorted(self.existential_variables()):
            if var in taken_set:
                from repro.queries.terms import fresh_variable

                replacement = fresh_variable("_r")
                while replacement in taken_set:
                    replacement = fresh_variable("_r")
                mapping[var] = replacement
                taken_set.add(replacement)
        if not mapping:
            return self
        return self.apply(Substitution(mapping))

    def __str__(self) -> str:
        head_render = ", ".join(str(t) for t in self.head)
        body_render = " AND ".join(str(a) for a in self.atoms)
        return f"{self.name}({head_render}) <- {body_render}"


def make_cq(name: str, head: Sequence[Term], atoms: Sequence[Atom]) -> CQ:
    """Convenience constructor accepting any sequences."""
    return CQ(head=tuple(head), atoms=tuple(atoms), name=name)
