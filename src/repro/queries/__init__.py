"""FOL query dialects used by the reformulation framework.

This package implements the query dialects of Table 4 in the paper:

========  ====================================================================
Dialect   Shape
========  ====================================================================
CQ        conjunctive query ``q(x) <- a1 AND ... AND an``
SCQ       semi-conjunctive query: join of unions of single-atom CQs
UCQ       union of CQs
USCQ      union of SCQs
JUCQ      join of UCQs
JUSCQ     join of USCQs
========  ====================================================================

plus the supporting machinery: terms, atoms, substitutions, most general
unifiers, homomorphism-based containment and minimization.
"""

from repro.queries.terms import (
    Constant,
    Term,
    Variable,
    fresh_variable,
    is_constant,
    is_variable,
)
from repro.queries.atoms import Atom, concept_atom, role_atom
from repro.queries.substitution import Substitution
from repro.queries.cq import CQ
from repro.queries.ucq import UCQ
from repro.queries.scq import SCQ, USCQ, AtomUnion
from repro.queries.jucq import JUCQ, JUSCQ
from repro.queries.unification import most_general_unifier
from repro.queries.homomorphism import (
    find_homomorphism,
    is_contained_in,
    are_equivalent,
)
from repro.queries.minimize import minimize_cq, minimize_ucq

__all__ = [
    "Atom",
    "AtomUnion",
    "CQ",
    "Constant",
    "JUCQ",
    "JUSCQ",
    "SCQ",
    "Substitution",
    "Term",
    "UCQ",
    "USCQ",
    "Variable",
    "are_equivalent",
    "concept_atom",
    "find_homomorphism",
    "fresh_variable",
    "is_constant",
    "is_contained_in",
    "is_variable",
    "minimize_cq",
    "minimize_ucq",
    "most_general_unifier",
    "role_atom",
]
