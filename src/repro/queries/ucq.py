"""Unions of conjunctive queries (UCQs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.queries.cq import CQ
from repro.queries.minimize import minimize_ucq


@dataclass(frozen=True)
class UCQ:
    """A union ``CQ1 OR ... OR CQn`` of CQs with the same head arity.

    Disjunct heads may use different variable names; only arity must agree
    (each disjunct is translated to SQL with positional output aliases).
    """

    disjuncts: Tuple[CQ, ...]
    name: str = "q_ucq"

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise ValueError("a UCQ must have at least one disjunct")
        arities = {len(cq.head) for cq in self.disjuncts}
        if len(arities) != 1:
            raise ValueError(f"UCQ disjuncts disagree on head arity: {sorted(arities)}")

    @property
    def arity(self) -> int:
        """Head arity shared by all disjuncts."""
        return len(self.disjuncts[0].head)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[CQ]:
        return iter(self.disjuncts)

    def minimized(self) -> "UCQ":
        """UCQ with disjuncts contained in another disjunct removed."""
        return UCQ(tuple(minimize_ucq(self.disjuncts)), name=self.name)

    def predicates(self) -> frozenset:
        """All predicate names mentioned by any disjunct."""
        return frozenset(
            atom.predicate for cq in self.disjuncts for atom in cq.atoms
        )

    def __str__(self) -> str:
        return "\n OR ".join(str(cq) for cq in self.disjuncts)


def union_of(disjuncts: Sequence[CQ], name: str = "q_ucq") -> UCQ:
    """Convenience constructor from any sequence of CQs."""
    return UCQ(tuple(disjuncts), name=name)
