"""Minimization of CQs (cores) and UCQs (removal of subsumed disjuncts).

The raw PerfectRef output is highly redundant (§2.3 of the paper): many
disjuncts are contained in others, and individual CQs may carry redundant
atoms introduced by unification steps. Minimization matters operationally:
the paper reports the *minimal* UCQ of its query Q9 is "only" 145 CQs.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.queries.cq import CQ
from repro.queries.homomorphism import is_contained_in
from repro.queries.terms import is_variable


def minimize_cq(query: CQ) -> CQ:
    """Compute a core of *query* by greedy atom elimination.

    An atom can be dropped when the reduced query is still contained in the
    original (the converse containment always holds, since dropping atoms
    only generalizes). Head variables must keep at least one body occurrence.
    """
    current = query.dedup_atoms()
    changed = True
    while changed and len(current.atoms) > 1:
        changed = False
        for index in range(len(current.atoms)):
            reduced_atoms = current.atoms[:index] + current.atoms[index + 1 :]
            remaining_vars = {v for atom in reduced_atoms for v in atom.variables()}
            if any(
                is_variable(t) and t not in remaining_vars for t in current.head
            ):
                continue
            reduced = current.with_atoms(reduced_atoms)
            if is_contained_in(reduced, current):
                current = reduced
                changed = True
                break
    return current


def minimize_ucq(disjuncts: Sequence[CQ], minimize_each: bool = False) -> List[CQ]:
    """Remove disjuncts contained in another disjunct.

    When two disjuncts are equivalent, the smaller (then earlier) one is
    kept. With ``minimize_each`` set, each surviving CQ is additionally
    reduced to a core.

    Containment checks are quadratic in the union size, so a necessary
    condition prunes pairs first: a homomorphism from ``other`` into
    ``candidate`` requires every predicate of ``other`` to occur in
    ``candidate``. Predicate sets are encoded as bitmasks, making the
    filter a single AND per pair — on reformulation outputs (where most
    disjunct pairs differ in some predicate) this removes almost all of
    the quadratic work.
    """
    survivors = [minimize_cq(cq) for cq in disjuncts] if minimize_each else list(disjuncts)

    bit_of: dict = {}
    masks: List[int] = []
    for cq in survivors:
        mask = 0
        for atom in cq.atoms:
            bit = bit_of.setdefault(atom.predicate, 1 << len(bit_of))
            mask |= bit
        masks.append(mask)

    kept: List[CQ] = []
    for index, candidate in enumerate(survivors):
        candidate_mask = masks[index]
        redundant = False
        for other_index, other in enumerate(survivors):
            if index == other_index:
                continue
            # Necessary condition: other's predicates all occur in candidate.
            if masks[other_index] & ~candidate_mask:
                continue
            if not is_contained_in(candidate, other):
                continue
            if not is_contained_in(other, candidate):
                redundant = True  # strictly more general disjunct exists
                break
            # Equivalent pair: prefer the one with fewer atoms, then the
            # earliest, as the class representative.
            if len(other.atoms) < len(candidate.atoms) or (
                len(other.atoms) == len(candidate.atoms) and other_index < index
            ):
                redundant = True
                break
        if not redundant:
            kept.append(candidate)
    return kept
