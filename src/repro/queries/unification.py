"""Most general unifiers for flat (function-free) atoms.

The PerfectRef *reduce* step specializes a CQ by unifying two of its body
atoms. Because DL-LiteR atoms contain no function symbols, unification is a
simple positional walk; there is no occurs-check to worry about.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.queries.atoms import Atom
from repro.queries.substitution import Substitution
from repro.queries.terms import Variable, is_variable


def most_general_unifier(
    first: Atom,
    second: Atom,
    protected: FrozenSet[Variable] = frozenset(),
) -> Optional[Substitution]:
    """Return an mgu of the two atoms, or None when they do not unify.

    *protected* variables (typically the distinguished variables of the
    enclosing query) are kept as representatives whenever possible: when a
    protected variable meets an unprotected one, the unprotected variable is
    bound to the protected one. This mirrors the paper's Example 7 footnote
    where the unifier keeps the head variable ``x``.
    """
    if first.predicate != second.predicate or first.arity != second.arity:
        return None

    unifier = Substitution.identity()
    for left_raw, right_raw in zip(first.args, second.args):
        left = unifier.apply_term(left_raw)
        right = unifier.apply_term(right_raw)
        if left == right:
            continue
        left_is_var = is_variable(left)
        right_is_var = is_variable(right)
        if left_is_var and right_is_var:
            # Prefer protected (head) variables, then named over anonymous,
            # as the representative term.
            if left in protected and right not in protected:
                binder, target = right, left
            elif right in protected and left not in protected:
                binder, target = left, right
            elif left.is_anonymous and not right.is_anonymous:
                binder, target = left, right
            else:
                binder, target = right, left
            unifier = unifier.compose(Substitution({binder: target}))
        elif left_is_var:
            unifier = unifier.compose(Substitution({left: right}))
        elif right_is_var:
            unifier = unifier.compose(Substitution({right: left}))
        else:
            return None
    return unifier
