"""Semi-conjunctive queries (SCQs) and unions thereof (USCQs).

An SCQ (Thomazo [33], Table 4 of the paper) is a join of unions of
*single-atom* CQs:

    q(x) <- (a11 OR ... OR a1k) AND ... AND (an1 OR ... OR ank)

Each parenthesized group is an :class:`AtomUnion` — structurally a UCQ whose
disjuncts have exactly one body atom and a common head (the variables shared
with the rest of the query). A USCQ is a union of SCQs with equal arity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.queries.cq import CQ
from repro.queries.terms import Term
from repro.queries.ucq import UCQ


class AtomUnion(UCQ):
    """A UCQ whose every disjunct has a single body atom."""

    def __post_init__(self) -> None:
        super().__post_init__()
        for cq in self.disjuncts:
            if len(cq.atoms) != 1:
                raise ValueError(
                    "AtomUnion disjuncts must have exactly one atom, "
                    f"got {len(cq.atoms)} in {cq}"
                )


@dataclass(frozen=True)
class SCQ:
    """A join of :class:`AtomUnion` blocks, projected on ``head``.

    Join conditions are implicit: blocks join on equality of head variables
    sharing the same name, exactly as fragments of a JUCQ do.
    """

    head: Tuple[Term, ...]
    blocks: Tuple[AtomUnion, ...]
    name: str = "q_scq"

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("an SCQ must have at least one block")

    def __iter__(self) -> Iterator[AtomUnion]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def expand(self) -> List[CQ]:
        """Distribute the joins over the unions, yielding equivalent CQs."""
        from repro.queries.jucq import expand_components

        return expand_components(self.head, self.blocks, self.name)

    def __str__(self) -> str:
        rendered = " AND ".join(f"({block})" for block in self.blocks)
        head_render = ", ".join(str(t) for t in self.head)
        return f"{self.name}({head_render}) <- {rendered}"


@dataclass(frozen=True)
class USCQ:
    """A union of SCQs with the same head arity."""

    scqs: Tuple[SCQ, ...]
    name: str = "q_uscq"

    def __post_init__(self) -> None:
        if not self.scqs:
            raise ValueError("a USCQ must have at least one SCQ")
        arities = {len(s.head) for s in self.scqs}
        if len(arities) != 1:
            raise ValueError(f"USCQ terms disagree on head arity: {sorted(arities)}")

    @property
    def arity(self) -> int:
        """Head arity shared by every SCQ."""
        return len(self.scqs[0].head)

    def __iter__(self) -> Iterator[SCQ]:
        return iter(self.scqs)

    def __len__(self) -> int:
        return len(self.scqs)

    def expand(self) -> List[CQ]:
        """The equivalent list of CQs (union of each SCQ's expansion)."""
        expanded: List[CQ] = []
        for scq in self.scqs:
            expanded.extend(scq.expand())
        return expanded

    def __str__(self) -> str:
        return "\n OR ".join(str(s) for s in self.scqs)


def single_atom_union(cqs: Sequence[CQ], name: str = "block") -> AtomUnion:
    """Build an :class:`AtomUnion` from single-atom CQs."""
    return AtomUnion(tuple(cqs), name=name)
