"""Measured recalibration of the engine cost model at scale.

The engine ships :class:`~repro.engine.operators.CostParameters` with
hand-tuned relative constants. Once the streaming generator can load
100k-1M facts, those constants can instead be *measured*: this module
times four micro-operations over a loaded backend's real tables —
sequential scan, DISTINCT dedup, single-key hash probes, and a key-key
hash join — and converts the wall-clock per-row figures into the cost
model's unit system, in which ``seq_scan_per_row`` is the numeraire
(1.0 by definition). :func:`calibrate_cost_parameters` returns the
recalibrated parameters together with the raw measurements; the scale
benchmarks record both per scale tier into ``BENCH_engine.json``.

Scan and dedup are timed through ``backend.execute`` (one statement
amortized over every row); probe and join are timed as in-process hash
kernels over the fetched rows — the same dict-bucket primitives
:class:`~repro.engine.relation.Index` and the vectorized hash join are
built from — because per-statement parse overhead would otherwise
swamp a per-probe figure.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.engine.operators import CostParameters

#: Floor for every derived constant — measurement noise must never
#: produce a zero/negative cost that the planner would chase.
MIN_UNITS = 0.01


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def calibrate_cost_parameters(
    backend,
    scan_table: str = "r_takesCourse",
    join_table: str = "r_advisor",
    probes: int = 10_000,
    repeats: int = 3,
    base: Optional[CostParameters] = None,
) -> Tuple[CostParameters, Dict[str, float]]:
    """Measure unit costs on *backend*'s loaded generated tables.

    *scan_table* and *join_table* name loaded binary (``s``, ``o``)
    tables that join on ``s`` (defaults match the streaming generator's
    two largest roles). Returns ``(parameters, measurements)`` where
    *parameters* is *base* (default :class:`CostParameters`) with the
    measured relative constants substituted, and *measurements* holds
    the raw row counts and per-row wall-clock figures the constants
    were derived from.
    """
    base = base or CostParameters()
    rows = backend.execute(f"SELECT s, o FROM {scan_table}")
    join_rows = backend.execute(f"SELECT s, o FROM {join_table}")
    if not rows or not join_rows:
        raise ValueError(
            f"calibration needs loaded rows in {scan_table!r} and "
            f"{join_table!r}"
        )
    stats = backend.table_statistics(scan_table)
    cardinality = stats.cardinality if stats is not None else len(rows)

    scan_s = _best_of(
        lambda: backend.execute(f"SELECT s, o FROM {scan_table}"), repeats
    )
    dedup_s = _best_of(
        lambda: backend.execute(f"SELECT DISTINCT s FROM {scan_table}"),
        repeats,
    )
    #: Seconds per cost-model unit: scanning one row costs 1.0 units.
    unit = max(scan_s / len(rows), 1e-9)

    # Hash-build / hash-probe: the dict kernel the executor's join and
    # Index buckets are made of, over the real (already decoded) rows.
    def build():
        buckets: Dict[object, list] = {}
        for row in join_rows:
            buckets.setdefault(row[0], []).append(row)
        return buckets

    build_s = _best_of(build, repeats)
    buckets = build()

    keys = [row[0] for row in rows[:probes]]

    def probe():
        get = buckets.get
        for key in keys:
            get(key)

    probe_s = _best_of(probe, repeats)

    measurements = {
        "rows_scanned": len(rows),
        "cardinality": cardinality,
        "join_rows": len(join_rows),
        "probes": len(keys),
        "seq_scan_s": scan_s,
        "distinct_s": dedup_s,
        "hash_build_s": build_s,
        "hash_probe_s": probe_s,
        "unit_s": unit,
    }
    parameters = replace(
        base,
        seq_scan_per_row=1.0,
        dedup_per_row=max(MIN_UNITS, (dedup_s - scan_s) / len(rows) / unit),
        hash_build_per_row=max(
            MIN_UNITS, build_s / len(join_rows) / unit
        ),
        hash_probe_per_row=max(MIN_UNITS, probe_s / len(keys) / unit),
        index_probe_per_row=max(MIN_UNITS, probe_s / len(keys) / unit),
    )
    return parameters, measurements
