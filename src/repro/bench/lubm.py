"""A LUBM∃-style university TBox for DL-LiteR.

The paper benchmarks against the LUBM∃ TBox [23]: 128 concepts, 34 roles
and 212 constraints. That exact file is not part of the paper, so this
module provides a university ontology *matching its reported statistics
and axiom-shape mix*: deep concept hierarchies, domain/range constraints
for every role, LUBM∃'s characteristic existential axioms (``C <= exists
R``), role hierarchies with inverses, and a handful of disjointness
constraints. ``tbox_statistics()`` reports the exact counts; the test
suite pins them.

The structure is intentionally *dependency-rich around Person and
memberOf* so that reformulations of the benchmark queries span two orders
of magnitude in size, as the paper's do (35 to 667 CQs, §6.1).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.dllite.axioms import Axiom, ConceptInclusion, RoleInclusion
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import AtomicConcept as C
from repro.dllite.vocabulary import Exists, Role


def _role(spec: str) -> Role:
    """Parse ``name`` or ``name-`` into a signed role."""
    if spec.endswith("-"):
        return Role(spec[:-1], inverse=True)
    return Role(spec)


#: (subclass, superclass) pairs — the concept hierarchy.
CONCEPT_HIERARCHY: List[Tuple[str, str]] = [
    # --- Person branch -------------------------------------------------
    ("Employee", "Person"),
    ("Student", "Person"),
    ("Reviewer", "Person"),
    ("Editor", "Person"),
    ("ProgramCommitteeMember", "Person"),
    ("Director", "Employee"),
    ("Intern", "Employee"),
    ("AdministrativeStaff", "Employee"),
    ("ClericalStaff", "AdministrativeStaff"),
    ("SystemsStaff", "AdministrativeStaff"),
    ("SecurityStaff", "AdministrativeStaff"),
    ("LibraryStaff", "AdministrativeStaff"),
    ("Registrar", "AdministrativeStaff"),
    ("Faculty", "Employee"),
    ("PostDoc", "Faculty"),
    ("Lecturer", "Faculty"),
    ("SeniorLecturer", "Lecturer"),
    ("JuniorLecturer", "Lecturer"),
    ("Professor", "Faculty"),
    ("AssistantProfessor", "Professor"),
    ("AssociateProfessor", "Professor"),
    ("FullProfessor", "Professor"),
    ("VisitingProfessor", "Professor"),
    ("EmeritusProfessor", "Professor"),
    ("AdjunctProfessor", "Professor"),
    ("Chair", "Professor"),
    ("Dean", "Professor"),
    ("ResearchStaff", "Employee"),
    ("ResearchScientist", "ResearchStaff"),
    ("LabTechnician", "ResearchStaff"),
    ("ResearchAssistant", "ResearchStaff"),
    ("TeachingAssistant", "Employee"),
    ("UndergraduateStudent", "Student"),
    ("GraduateStudent", "Student"),
    ("DoctoralStudent", "GraduateStudent"),
    ("MastersStudent", "GraduateStudent"),
    ("ExchangeStudent", "Student"),
    ("PartTimeStudent", "Student"),
    ("FullTimeStudent", "Student"),
    ("HonorsStudent", "UndergraduateStudent"),
    # --- Organization branch -------------------------------------------
    ("University", "Organization"),
    ("College", "Organization"),
    ("Department", "Organization"),
    ("Institute", "Organization"),
    ("Program", "Organization"),
    ("ResearchGroup", "Organization"),
    ("Laboratory", "Organization"),
    ("Library", "Organization"),
    ("School", "Organization"),
    ("Consortium", "Organization"),
    ("FundingAgency", "Organization"),
    ("Company", "Organization"),
    ("Committee", "Organization"),
    ("AlumniAssociation", "Organization"),
    ("StudentUnion", "Organization"),
    # --- Publication branch ---------------------------------------------
    ("Article", "Publication"),
    ("Book", "Publication"),
    ("Manual", "Publication"),
    ("Software", "Publication"),
    ("Specification", "Publication"),
    ("TechnicalReport", "Publication"),
    ("UnofficialPublication", "Publication"),
    ("Thesis", "Publication"),
    ("JournalArticle", "Article"),
    ("ConferencePaper", "Article"),
    ("WorkshopPaper", "Article"),
    ("SurveyArticle", "JournalArticle"),
    ("DemoPaper", "ConferencePaper"),
    ("PosterPaper", "ConferencePaper"),
    ("EditedBook", "Book"),
    ("Monograph", "Book"),
    ("Textbook", "Book"),
    ("PhDThesis", "Thesis"),
    ("MastersThesis", "Thesis"),
    ("BachelorsThesis", "Thesis"),
    # --- Work branch ------------------------------------------------------
    ("Course", "Work"),
    ("GraduateCourse", "Course"),
    ("UndergraduateCourse", "Course"),
    ("SeminarCourse", "Course"),
    ("LabCourse", "Course"),
    ("CoreCourse", "Course"),
    ("ElectiveCourse", "Course"),
    ("CapstoneCourse", "Course"),
    ("Research", "Work"),
    ("ResearchProject", "Research"),
    ("FundedProject", "ResearchProject"),
    ("IndustryProject", "ResearchProject"),
    # --- Event branch ----------------------------------------------------
    ("Conference", "Event"),
    ("Workshop", "Event"),
    ("Lecture", "Event"),
    ("Colloquium", "Event"),
    ("Meeting", "Event"),
    ("Defense", "Event"),
    # --- Award branch ------------------------------------------------------
    ("BestPaperAward", "Award"),
    ("Fellowship", "Award"),
    ("TeachingAward", "Award"),
    ("Grant", "Award"),
    ("ResearchGrant", "Grant"),
    ("TravelGrant", "Grant"),
    # --- Degree branch -----------------------------------------------------
    ("BachelorsDegree", "Degree"),
    ("MastersDegree", "Degree"),
    ("DoctoralDegree", "Degree"),
    # --- Facility branch ----------------------------------------------------
    ("Building", "Facility"),
    ("Room", "Facility"),
    ("Office", "Room"),
    ("LectureHall", "Room"),
    ("ConferenceRoom", "Room"),
    # --- Venue branch --------------------------------------------------------
    ("JournalVenue", "Venue"),
    ("ConferenceVenue", "Venue"),
    ("WorkshopVenue", "Venue"),
    # --- extra depth to match the LUBM∃ signature size ---------------------
    ("DistinguishedProfessor", "FullProfessor"),
    ("ResearchProfessor", "Professor"),
    ("UniversityLibrary", "Library"),
    ("MedicalSchool", "School"),
    ("LawSchool", "School"),
    ("Proceedings", "Book"),
    ("Encyclopedia", "Book"),
    ("OnlineCourse", "Course"),
]

#: role -> (domain concept, range concept); "" means no axiom is declared
#: on that side (a role must keep at least one mention to stay in the
#: signature; those trimmed here are covered by a hierarchy axiom).
ROLE_SIGNATURES: Dict[str, Tuple[str, str]] = {
    "advisor": ("Student", "Professor"),
    "affiliateOf": ("Organization", ""),
    "affiliatedOrganizationOf": ("Organization", ""),
    "degreeFrom": ("Person", "University"),
    "doctoralDegreeFrom": ("Person", "University"),
    "mastersDegreeFrom": ("Person", "University"),
    "undergraduateDegreeFrom": ("Person", "University"),
    "hasAlumnus": ("", "Person"),
    "headOf": ("Chair", "Organization"),
    "listedCourse": ("Schedule", ""),
    "member": ("Organization", "Person"),
    "memberOf": ("Person", "Organization"),
    "orgPublication": ("Organization", "Publication"),
    "publicationAuthor": ("Publication", "Person"),
    "authorOf": ("", "Publication"),
    "publicationResearch": ("Publication", "Research"),
    "researchInterest": ("Person", "Research"),
    "researchProject": ("ResearchGroup", "Research"),
    "softwareDocumentation": ("Software", "Publication"),
    "subOrganizationOf": ("Organization", "Organization"),
    "takesCourse": ("Student", "Course"),
    "teacherOf": ("Faculty", "Course"),
    "teachingAssistantOf": ("TeachingAssistant", "Course"),
    "worksFor": ("Employee", "Organization"),
    "employs": ("", "Employee"),
    "collaboratesWith": ("", ""),
    "attends": ("Person", ""),
    "organizes": ("Person", ""),
    "reviews": ("Reviewer", "Publication"),
    "receivedAward": ("Person", ""),
    "hasDegree": ("Person", ""),
    "enrolledIn": ("Student", "Program"),
    "offersCourse": ("Department", ""),
    "publishedIn": ("Article", "Venue"),
}

#: (sub role, super role) — signed specs ("name" or "name-").
ROLE_HIERARCHY: List[Tuple[str, str]] = [
    ("doctoralDegreeFrom", "degreeFrom"),
    ("mastersDegreeFrom", "degreeFrom"),
    ("undergraduateDegreeFrom", "degreeFrom"),
    ("degreeFrom", "hasAlumnus-"),       # alumni are degree holders
    ("headOf", "worksFor"),              # heading an org is working for it
    ("worksFor", "memberOf"),            # LUBM: worksFor <= memberOf
    ("member", "memberOf-"),             # member and memberOf are inverses
    ("worksFor", "employs-"),            # employment seen from the org side
    ("authorOf", "publicationAuthor-"),  # authorship seen from the person
    ("collaboratesWith", "collaboratesWith-"),  # symmetry
    ("teachingAssistantOf", "takesCourse"),     # TAs attend their course
]

#: (concept, role spec) — LUBM∃'s mandatory-participation axioms C <= exists R.
EXISTENTIALS: List[Tuple[str, str]] = [
    ("Professor", "teacherOf"),
    ("Professor", "researchInterest"),
    ("Faculty", "worksFor"),
    ("GraduateStudent", "advisor"),
    ("DoctoralStudent", "advisor"),
    ("Student", "takesCourse"),
    ("Student", "memberOf"),
    ("GraduateStudent", "undergraduateDegreeFrom"),
    ("Publication", "publicationAuthor"),
    ("Article", "publicationResearch"),
    ("Article", "publishedIn"),
    ("Department", "subOrganizationOf"),
    ("College", "subOrganizationOf"),
    ("ResearchGroup", "subOrganizationOf"),
    ("ResearchGroup", "researchProject"),
    ("University", "hasAlumnus"),
    ("Chair", "headOf"),
    ("TeachingAssistant", "teachingAssistantOf"),
    ("Software", "softwareDocumentation"),
    ("Schedule", "listedCourse"),
    ("Course", "teacherOf-"),            # every course has some teacher
    ("FundedProject", "researchProject-"),  # funded projects belong to a group
]

#: (lhs concept, rhs concept) disjointness (lhs <= not rhs).
DISJOINTNESS: List[Tuple[str, str]] = [
    ("UndergraduateStudent", "GraduateStudent"),
    ("Person", "Organization"),
    ("Person", "Publication"),
    ("Course", "Research"),
    ("Professor", "Lecturer"),
]

#: (role, role) disjointness over roles (lhs <= not rhs).
ROLE_DISJOINTNESS: List[Tuple[str, str]] = [
    ("teacherOf", "takesCourse"),
]


def _existential(spec: str) -> Exists:
    return Exists(_role(spec))


@lru_cache(maxsize=1)
def lubm_exists_tbox() -> TBox:
    """Build (once) the benchmark TBox."""
    axioms: List[Axiom] = []
    for sub, sup in CONCEPT_HIERARCHY:
        axioms.append(ConceptInclusion(C(sub), C(sup)))
    for role_name, (domain, range_) in sorted(ROLE_SIGNATURES.items()):
        if domain:
            axioms.append(ConceptInclusion(Exists(Role(role_name)), C(domain)))
        if range_:
            axioms.append(
                ConceptInclusion(Exists(Role(role_name, inverse=True)), C(range_))
            )
    for sub, sup in ROLE_HIERARCHY:
        axioms.append(RoleInclusion(_role(sub), _role(sup)))
    for concept, role_spec in EXISTENTIALS:
        axioms.append(ConceptInclusion(C(concept), _existential(role_spec)))
    for lhs, rhs in DISJOINTNESS:
        axioms.append(ConceptInclusion(C(lhs), C(rhs), negative=True))
    for lhs, rhs in ROLE_DISJOINTNESS:
        axioms.append(RoleInclusion(_role(lhs), _role(rhs), negative=True))
    return TBox(axioms)


def tbox_statistics() -> Dict[str, int]:
    """Signature/axiom counts of the benchmark TBox (reported in docs)."""
    return lubm_exists_tbox().statistics()
