"""The LUBM∃-style benchmark: TBox, data generator, workload, harness.

The paper evaluates on two LUBM∃ KBs [23] (a DL-LiteR university TBox of
128 concepts, 34 roles and 212 constraints; ABoxes of 15M and 100M facts
from the EUDG generator) and a workload of 13 CQs plus the star queries
A3–A6 derived from Q1. The original TBox file is not bundled with the
paper, so :mod:`lubm` provides a university TBox *matching its reported
statistics and axiom-shape mix*; :mod:`generator` is a seeded EUDG-style
generator with an explicit incompleteness knob (types left implicit for
reasoning to recover); :mod:`queries` defines Q1–Q13 and A3–A6 against our
TBox; :mod:`harness` runs the paper's experiments at laptop scale.
"""

from repro.bench.lubm import lubm_exists_tbox, tbox_statistics
from repro.bench.generator import generate_abox, scale_parameters
from repro.bench.queries import benchmark_queries, star_queries
from repro.bench.harness import (
    ExperimentResult,
    evaluation_experiment,
    reformulation_statistics,
    search_space_experiment,
)

__all__ = [
    "ExperimentResult",
    "benchmark_queries",
    "evaluation_experiment",
    "generate_abox",
    "lubm_exists_tbox",
    "reformulation_statistics",
    "scale_parameters",
    "search_space_experiment",
    "star_queries",
    "tbox_statistics",
]
