"""Streaming, seeded LUBM-class data generation at real scale.

The EUDG-style generator in :mod:`repro.bench.generator` materializes a
whole :class:`~repro.dllite.abox.ABox` in memory, which caps benchmarks
at toy sizes. This module is its scale sibling: a **streaming** generator
driven by a numeric *scale factor* (the approximate number of facts)
that yields universities/departments/people/courses as bounded fact
batches — the full dataset never exists in memory at once, so 1M-10M
triples generate in constant space and pour straight into a backend's
:meth:`~repro.storage.base.Backend.bulk_load` fast path.

Determinism: every department derives its own :class:`random.Random`
from ``(seed, university, department)`` arithmetic, so a given
``(scale_factor, seed)`` pair always produces the byte-identical fact
stream — independently of batch size, and without any cross-department
RNG coupling (departments could even generate in parallel).

The vocabulary is a subset of the LUBM∃ signature
(:mod:`repro.bench.lubm`), so generated data answers the Fig 2/3
benchmark queries after reformulation against ``lubm_exists_tbox()``.

CLI::

    python -m repro.bench.datagen --scale-factor 100000 --seed 7 --counts
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.storage.dictionary import Dictionary
from repro.storage.layouts import LayoutData, SimpleLayout, TableSpec

#: A streamed fact: ``("c", concept, individual)`` or
#: ``("r", role, subject, object)``.
Fact = Tuple[str, ...]

#: Concepts the generator asserts (a subset of the LUBM∃ signature).
CONCEPTS: Tuple[str, ...] = (
    "University",
    "Department",
    "FullProfessor",
    "AssociateProfessor",
    "AssistantProfessor",
    "Lecturer",
    "GraduateCourse",
    "UndergraduateCourse",
    "GraduateStudent",
    "UndergraduateStudent",
    "JournalArticle",
    "ConferencePaper",
)

#: Roles the generator asserts (a subset of the LUBM∃ signature).
ROLES: Tuple[str, ...] = (
    "subOrganizationOf",
    "worksFor",
    "headOf",
    "doctoralDegreeFrom",
    "offersCourse",
    "teacherOf",
    "memberOf",
    "takesCourse",
    "advisor",
    "undergraduateDegreeFrom",
    "orgPublication",
    "publicationAuthor",
)

PROFESSOR_RANKS = ("FullProfessor", "AssociateProfessor", "AssistantProfessor")

#: Departments per university (name partitioning only; does not affect
#: the per-department fact schedule).
DEPARTMENTS_PER_UNIVERSITY = 10

#: Facts one department emits, excluding its university's own facts —
#: the deterministic per-department schedule below adds up to exactly
#: this. ``scale_factor`` maps to a department count through it.
FACTS_PER_DEPARTMENT = 223

#: Default batch width for :func:`stream_batches` (rows resident at once).
DEFAULT_BATCH_ROWS = 20_000


def departments_for(scale_factor: int) -> int:
    """How many departments approximate *scale_factor* facts."""
    if scale_factor < 1:
        raise ValueError("scale_factor must be positive")
    return max(1, round(scale_factor / FACTS_PER_DEPARTMENT))


def _department_rng(seed: int, university: int, department: int) -> random.Random:
    """The department's private RNG: pure arithmetic on the triple, so
    the stream is hash-salt-independent and departments are decoupled."""
    return random.Random(
        (seed * 2_654_435_761 + university * 1_000_003 + department * 8191)
        % (2**63)
    )


def _department_facts(
    seed: int, university: int, department: int
) -> Iterator[Fact]:
    """One department's facts (exactly :data:`FACTS_PER_DEPARTMENT`)."""
    rng = _department_rng(seed, university, department)
    univ = f"Univ{university}"
    dept = f"Dept{university}_{department}"
    yield ("c", "Department", dept)
    yield ("r", "subOrganizationOf", dept, univ)

    professors: List[str] = []
    for rank in PROFESSOR_RANKS:
        for i in range(2):
            person = f"{rank}{university}_{department}_{i}"
            professors.append(person)
            yield ("c", rank, person)
            yield ("r", "worksFor", person, dept)
            yield (
                "r",
                "doctoralDegreeFrom",
                person,
                f"Univ{rng.randrange(university + 1)}",
            )
    yield ("r", "headOf", rng.choice(professors), dept)

    lecturers: List[str] = []
    for i in range(2):
        person = f"Lecturer{university}_{department}_{i}"
        lecturers.append(person)
        yield ("c", "Lecturer", person)
        yield ("r", "worksFor", person, dept)

    courses: List[str] = []
    graduate_courses: List[str] = []
    for i in range(4):
        course = f"GradCourse{university}_{department}_{i}"
        graduate_courses.append(course)
        courses.append(course)
        yield ("c", "GraduateCourse", course)
        yield ("r", "offersCourse", dept, course)
        yield ("r", "teacherOf", rng.choice(professors), course)
    for i in range(6):
        course = f"Course{university}_{department}_{i}"
        courses.append(course)
        yield ("c", "UndergraduateCourse", course)
        yield ("r", "offersCourse", dept, course)
        yield ("r", "teacherOf", rng.choice(professors + lecturers), course)

    for i in range(8):
        student = f"GradStudent{university}_{department}_{i}"
        yield ("c", "GraduateStudent", student)
        yield ("r", "memberOf", student, dept)
        for course in rng.sample(graduate_courses, 2):
            yield ("r", "takesCourse", student, course)
        yield ("r", "advisor", student, rng.choice(professors))
        yield (
            "r",
            "undergraduateDegreeFrom",
            student,
            f"Univ{rng.randrange(university + 1)}",
        )
    for i in range(16):
        student = f"UndergradStudent{university}_{department}_{i}"
        yield ("c", "UndergraduateStudent", student)
        yield ("r", "memberOf", student, dept)
        for course in rng.sample(courses, 3):
            yield ("r", "takesCourse", student, course)

    for i in range(10):
        paper = f"Paper{university}_{department}_{i}"
        kind = rng.choice(("JournalArticle", "ConferencePaper"))
        yield ("c", kind, paper)
        yield ("r", "orgPublication", dept, paper)
        yield ("r", "publicationAuthor", paper, rng.choice(professors))
        yield (
            "r",
            "publicationAuthor",
            paper,
            f"GradStudent{university}_{department}_{rng.randrange(8)}",
        )


def stream_facts(scale_factor: int, seed: int = 2016) -> Iterator[Fact]:
    """Lazily yield a deterministic LUBM-class fact stream of roughly
    *scale_factor* facts. Never materializes the dataset: at any moment
    only one department's generator frame is live."""
    departments = departments_for(scale_factor)
    for index in range(departments):
        university, department = divmod(index, DEPARTMENTS_PER_UNIVERSITY)
        if department == 0:
            yield ("c", "University", f"Univ{university}")
        yield from _department_facts(seed, university, department)


def stream_batches(
    scale_factor: int,
    seed: int = 2016,
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> Iterator[List[Fact]]:
    """The fact stream chunked into lists of at most *batch_rows* facts.

    Chunking wraps the one underlying stream, so the concatenation of
    batches is byte-identical for every *batch_rows* — only the cut
    points move.
    """
    if batch_rows < 1:
        raise ValueError("batch_rows must be positive")
    batch: List[Fact] = []
    for fact in stream_facts(scale_factor, seed):
        batch.append(fact)
        if len(batch) >= batch_rows:
            yield batch
            batch = []
    if batch:
        yield batch


def exact_fact_count(scale_factor: int) -> int:
    """The exact stream length for *scale_factor* (departments times the
    fixed schedule, plus one ``University`` fact per university)."""
    departments = departments_for(scale_factor)
    universities = -(-departments // DEPARTMENTS_PER_UNIVERSITY)
    return departments * FACTS_PER_DEPARTMENT + universities


# ---------------------------------------------------------------------------
# Encoding facts into simple-layout tables
# ---------------------------------------------------------------------------
def generated_schema(tbox=None) -> List[TableSpec]:
    """The simple-layout schema (no rows) the generated stream loads
    into: one unary/binary table per predicate of the generator's
    signature — extended to the whole TBox signature when *tbox* is
    given, so reformulations can mention fact-less predicates."""
    concepts = set(CONCEPTS)
    roles = set(ROLES)
    if tbox is not None:
        concepts |= set(tbox.concept_names())
        roles |= set(tbox.role_names())
    specs: List[TableSpec] = []
    for concept in sorted(concepts):
        specs.append(
            TableSpec(
                name=SimpleLayout.concept_table(concept),
                columns=("s",),
                rows=[],
                indexes=(("s",),),
            )
        )
    for role in sorted(roles):
        specs.append(
            TableSpec(
                name=SimpleLayout.role_table(role),
                columns=("s", "o"),
                rows=[],
                indexes=(("s",), ("o",), ("s", "o")),
            )
        )
    return specs


def encode_batch(
    batch: Iterable[Fact], dictionary: Dictionary
) -> Dict[str, List[Tuple]]:
    """Dictionary-encode one fact batch into per-table row batches
    (simple-layout table names, int rows — the compact column storage
    that lets millions of triples fit in memory)."""
    encode = dictionary.encode
    tables: Dict[str, List[Tuple]] = {}
    for fact in batch:
        if fact[0] == "c":
            name = SimpleLayout.concept_table(fact[1])
            row: Tuple = (encode(fact[2]),)
        else:
            name = SimpleLayout.role_table(fact[1])
            row = (encode(fact[2]), encode(fact[3]))
        rows = tables.get(name)
        if rows is None:
            tables[name] = [row]
        else:
            rows.append(row)
    return tables


def load_generated(
    backend,
    scale_factor: int,
    seed: int = 2016,
    batch_rows: int = DEFAULT_BATCH_ROWS,
    dictionary: Optional[Dictionary] = None,
    tbox=None,
    incremental: bool = False,
    batch_sink: Optional[Callable[[int], None]] = None,
) -> Tuple[int, Dictionary]:
    """Generate and load roughly *scale_factor* facts into *backend*.

    The default path streams batches through the backend's
    :meth:`~repro.storage.base.Backend.bulk_load` session (deferred
    indexes, one statistics build). ``incremental=True`` instead loads
    the empty schema and pushes every batch through ``insert_rows`` —
    the slow path the bulk API is benchmarked against. *batch_sink*, if
    given, is called with each batch's row count (tests assert streaming
    residency through it). Returns ``(facts loaded, dictionary)``.
    """
    dictionary = dictionary or Dictionary()
    schema = generated_schema(tbox)
    total = 0
    batches = stream_batches(scale_factor, seed, batch_rows)
    if incremental:
        backend.load(LayoutData(tables=schema))
        for batch in batches:
            if batch_sink is not None:
                batch_sink(len(batch))
            total += len(batch)
            for table, rows in encode_batch(batch, dictionary).items():
                backend.insert_rows(table, rows)
    else:
        with backend.bulk_load() as loader:
            for spec in schema:
                loader.create_table(
                    spec.name, spec.columns, spec.indexes, spec.shard_key
                )
            for batch in batches:
                if batch_sink is not None:
                    batch_sink(len(batch))
                total += len(batch)
                for table, rows in encode_batch(batch, dictionary).items():
                    loader.append(table, rows)
    return total, dictionary


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.bench.datagen``: stream, count, or load."""
    parser = argparse.ArgumentParser(
        description="Streaming LUBM-class fact generator"
    )
    parser.add_argument(
        "--scale-factor",
        type=int,
        default=10_000,
        help="approximate number of facts to generate",
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--batch-rows",
        type=int,
        default=DEFAULT_BATCH_ROWS,
        help="facts resident per batch (streaming memory bound)",
    )
    parser.add_argument(
        "--counts",
        action="store_true",
        help="print per-predicate fact counts instead of the stream",
    )
    parser.add_argument(
        "--load",
        choices=("memory", "sqlite"),
        help="bulk-load the stream into a backend and report throughput",
    )
    args = parser.parse_args(argv)

    if args.load:
        from repro.storage.memory_backend import MemoryBackend
        from repro.storage.sqlite_backend import SQLiteBackend

        backend = MemoryBackend() if args.load == "memory" else SQLiteBackend()
        started = time.perf_counter()
        total, _dictionary = load_generated(
            backend, args.scale_factor, args.seed, args.batch_rows
        )
        elapsed = time.perf_counter() - started
        backend.close()
        print(
            f"bulk-loaded {total} facts into {args.load} in {elapsed:.2f}s "
            f"({total / max(elapsed, 1e-9):,.0f} rows/s)"
        )
        return 0
    if args.counts:
        counts: Dict[str, int] = {}
        total = 0
        for fact in stream_facts(args.scale_factor, args.seed):
            counts[fact[1]] = counts.get(fact[1], 0) + 1
            total += 1
        for name in sorted(counts):
            print(f"{name}\t{counts[name]}")
        print(f"TOTAL\t{total}")
        return 0
    out = sys.stdout
    for fact in stream_facts(args.scale_factor, args.seed):
        out.write("\t".join(fact) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
