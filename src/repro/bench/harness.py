"""The experiment harness: regenerates the paper's tables and figures.

Three entry points, one per experiment family:

* :func:`reformulation_statistics` — the §2.3/§6.1 workload profile
  (atoms per query, UCQ and minimal-UCQ reformulation sizes);
* :func:`search_space_experiment` — Table 6 (|Lq|, |Gq| capped, covers
  explored by GDL, for the star queries A3–A6);
* :func:`evaluation_experiment` — Figures 2 and 3 (evaluation time of the
  UCQ / Croot / GDL-RDBMS / GDL-ext reformulations per query, per backend
  and layout, with "statement too long" failures reported as such).

All return plain row dictionaries plus an ASCII rendering, so benchmarks
can both assert on the numbers and print paper-style tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.covers.generalized import enumerate_generalized_covers
from repro.covers.lattice import enumerate_safe_covers
from repro.cost.estimators import ExternalCoverCost
from repro.cost.model import ExternalCostModel
from repro.cost.statistics import DataStatistics
from repro.dllite.tbox import TBox
from repro.engine.errors import StatementTooLongError
from repro.optimizer.gdl import gdl_search
from repro.queries.cq import CQ
from repro.reformulation.perfectref import reformulate_to_ucq


@dataclass
class ExperimentResult:
    """Rows plus a rendered table."""

    title: str
    rows: List[Dict] = field(default_factory=list)

    def table(self) -> str:
        """ASCII-render the rows (paper-style)."""
        if not self.rows:
            return f"== {self.title} ==\n(no rows)"
        headers = list(self.rows[0].keys())
        widths = {
            h: max(len(str(h)), *(len(str(r.get(h, ""))) for r in self.rows))
            for h in headers
        }
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(str(h).ljust(widths[h]) for h in headers))
        lines.append("-+-".join("-" * widths[h] for h in headers))
        for row in self.rows:
            lines.append(
                " | ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers)
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# §2.3 / §6.1: workload and reformulation-size statistics
# ---------------------------------------------------------------------------


def reformulation_statistics(
    tbox: TBox,
    queries: Dict[str, CQ],
    minimize: bool = True,
) -> ExperimentResult:
    """Per query: atom count, UCQ size, minimal UCQ size, times."""
    result = ExperimentResult("Workload reformulation statistics (§2.3, §6.1)")
    for name, query in queries.items():
        started = time.perf_counter()
        ucq = reformulate_to_ucq(query, tbox, minimize=False)
        raw_seconds = time.perf_counter() - started
        row = {
            "query": name,
            "atoms": len(query.atoms),
            "ucq_size": len(ucq),
            "reformulation_ms": round(raw_seconds * 1000, 1),
        }
        if minimize:
            started = time.perf_counter()
            minimal = ucq.minimized()
            row["minimal_ucq_size"] = len(minimal)
            row["minimization_ms"] = round(
                (time.perf_counter() - started) * 1000, 1
            )
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Table 6: search-space sizes and GDL exploration counts
# ---------------------------------------------------------------------------


def search_space_experiment(
    tbox: TBox,
    queries: Dict[str, CQ],
    statistics: DataStatistics,
    generalized_limit: int = 20_000,
) -> ExperimentResult:
    """|Lq|, |Gq| (capped) and the covers GDL explores, per query."""
    result = ExperimentResult("Search space sizes (Table 6)")
    model = ExternalCostModel(statistics)
    for name, query in queries.items():
        lq_size = sum(1 for _ in enumerate_safe_covers(query, tbox))
        gq_size = 0
        for _ in enumerate_generalized_covers(query, tbox, limit=generalized_limit):
            gq_size += 1
        estimator = ExternalCoverCost(tbox, model)
        search = gdl_search(query, tbox, estimator)
        result.rows.append(
            {
                "query": name,
                "atoms": len(query.atoms),
                "lq_size": lq_size,
                "gq_size": (
                    f">= {gq_size}" if gq_size >= generalized_limit else gq_size
                ),
                "gdl_safe_explored": search.safe_covers_explored,
                "gdl_generalized_explored": search.generalized_covers_explored,
                "gdl_ms": round(search.elapsed_seconds * 1000, 1),
            }
        )
    return result


# ---------------------------------------------------------------------------
# Figures 2 and 3: evaluation time per reformulation variant
# ---------------------------------------------------------------------------

#: The four per-system variants of Figure 2; Figure 3 adds the RDF layout
#: by running the same variants on an RDF-layout system.
DEFAULT_VARIANTS: Tuple[Tuple[str, str, Optional[str]], ...] = (
    ("UCQ", "ucq", None),
    ("Croot", "croot", None),
    ("GDL/RDBMS", "gdl", "rdbms"),
    ("GDL/ext", "gdl", "ext"),
)


def evaluation_experiment(
    system,
    queries: Dict[str, CQ],
    variants: Sequence[Tuple[str, str, Optional[str]]] = DEFAULT_VARIANTS,
    time_budget_seconds: Optional[float] = None,
    title: str = "Evaluation time (Figure 2/3)",
    repeat: int = 1,
) -> ExperimentResult:
    """Evaluate each query under each reformulation variant.

    ``repeat`` > 1 evaluates each statement that many times and reports
    the fastest run — the warm steady state (statement-cached plans,
    populated batch caches), which is the regime a serving deployment
    sees and the role DB2's dynamic statement cache plays in the paper's
    own measurements. Every repetition must return the same answers.

    Failures (e.g. the statement-length limit on RDF-layout
    reformulations) are recorded, not raised — matching the paper's grey
    "missing bar" treatment in Figure 3.
    """
    result = ExperimentResult(title)
    for name, query in queries.items():
        reference_answers = None
        for label, strategy, cost in variants:
            row: Dict = {"query": name, "variant": label}
            try:
                choice = system.reformulate(
                    query,
                    strategy=strategy,
                    cost=cost or "ext",
                    time_budget_seconds=time_budget_seconds,
                )
                row["sql_chars"] = len(choice.sql)
                started = time.perf_counter()
                answers = system.execute_choice(query, choice)
                elapsed = time.perf_counter() - started
                row["status"] = "ok"
                for _ in range(max(repeat, 1) - 1):
                    started = time.perf_counter()
                    again = system.execute_choice(query, choice)
                    elapsed = min(elapsed, time.perf_counter() - started)
                    if again != answers:
                        row["status"] = "UNSTABLE ANSWERS"
                row["eval_ms"] = round(elapsed * 1000, 2)
                row["answers"] = len(answers)
                execution = getattr(system.backend, "last_execution", None)
                if execution is not None:
                    row["batches"] = execution.batches
                if row["status"] == "ok":
                    if reference_answers is None:
                        reference_answers = answers
                    elif answers != reference_answers:
                        row["status"] = "WRONG ANSWERS"
            except StatementTooLongError as error:
                row["status"] = f"too long ({error.size:,} chars)"
                row["eval_ms"] = None
            result.rows.append(row)
    return result
