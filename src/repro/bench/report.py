"""Machine-readable engine benchmark reporting (``BENCH_engine.json``).

The Fig 2/3 benchmark sims record their per-query evaluation rows here;
at session teardown the report is written as JSON with per-row speedups
against the recorded pre-PR baseline (``benchmarks/baseline_engine.json``,
captured on the pre-vectorization engine with the same warm min-of-N
protocol) plus per-run and overall geometric means — so the engine's
perf trajectory is tracked across PRs and CI uploads the artifact.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Union


def _geomean(values: List[float]) -> Optional[float]:
    values = [max(v, 0.001) for v in values if v is not None]
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


class EngineBenchReport:
    """Collects evaluation rows per run and writes one JSON report."""

    #: Row fields copied into the report verbatim (when present).
    FIELDS = ("query", "variant", "sql_chars", "eval_ms", "answers", "batches", "status")

    def __init__(self, baseline_path: Optional[Union[str, Path]] = None) -> None:
        self.runs: Dict[str, List[Dict]] = {}
        self.extras: Dict[str, Dict] = {}
        self.baseline: Dict[str, List[Dict]] = {}
        if baseline_path is not None:
            path = Path(baseline_path)
            if path.exists():
                with path.open() as handle:
                    self.baseline = json.load(handle)

    # ------------------------------------------------------------------
    def record(self, run: str, rows: List[Dict]) -> None:
        """Store one experiment's rows under the name *run*."""
        self.runs[run] = [
            {field: row.get(field) for field in self.FIELDS if field in row}
            for row in rows
        ]

    def extra(self, name: str, payload: Dict) -> None:
        """Attach a free-form summary block (e.g. the parallel-serving
        scaling measurements) under ``extras.<name>`` in the report."""
        self.extras[name] = payload

    # ------------------------------------------------------------------
    def _baseline_eval(self, run: str, row: Dict) -> Optional[float]:
        for base in self.baseline.get(run, ()):  # keyed (query, variant)
            if (
                base.get("query") == row.get("query")
                and base.get("variant") == row.get("variant")
                and base.get("status") == "ok"
            ):
                return base.get("eval_ms")
        return None

    def summary(self) -> Dict:
        """The report body: rows with speedups, geomeans per run."""
        report: Dict = {"runs": {}, "protocol": "eval_ms is min of warm repeats"}
        all_speedups: List[float] = []
        for run, rows in self.runs.items():
            out_rows = []
            speedups = []
            eval_times = []
            for row in rows:
                entry = dict(row)
                if row.get("status") == "ok" and row.get("eval_ms") is not None:
                    eval_times.append(row["eval_ms"])
                    base = self._baseline_eval(run, row)
                    if base is not None:
                        entry["baseline_eval_ms"] = base
                        entry["speedup"] = round(
                            max(base, 0.001) / max(row["eval_ms"], 0.001), 2
                        )
                        speedups.append(entry["speedup"])
                out_rows.append(entry)
            summary: Dict = {"rows": out_rows}
            geomean_eval = _geomean(eval_times)
            if geomean_eval is not None:
                summary["geomean_eval_ms"] = round(geomean_eval, 3)
            geomean_speedup = _geomean(speedups)
            if geomean_speedup is not None:
                summary["geomean_speedup"] = round(geomean_speedup, 2)
                all_speedups.extend(speedups)
            report["runs"][run] = summary
        overall = _geomean(all_speedups)
        if overall is not None:
            report["geomean_speedup_vs_baseline"] = round(overall, 2)
        if self.extras:
            report["extras"] = self.extras
        return report

    def write(self, path: Union[str, Path]) -> Optional[Path]:
        """Write the report (no-op when nothing was recorded)."""
        if not self.runs and not self.extras:
            return None
        path = Path(path)
        with path.open("w") as handle:
            json.dump(self.summary(), handle, indent=1)
        return path
