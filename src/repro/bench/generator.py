"""A seeded, EUDG-style ABox generator for the LUBM∃ TBox.

EUDG [23] produces LUBM data *with incompleteness*: some facts are left
implicit so that query answering genuinely requires the ontology. This
generator reproduces that behaviour with two knobs:

* ``type_omission_probability`` — an individual's explicit type is dropped
  when a domain/range or hierarchy axiom can recover it (e.g. a department
  head's ``Chair``/``Professor`` types follow from ``headOf``);
* ``edge_omission_probability`` — mandatory-participation edges (e.g. a
  graduate student's ``advisor``) are dropped; the LUBM∃ existential
  axioms make such individuals answers to the corresponding queries
  anyway.

Everything is driven by one :class:`random.Random` seed, so a given
(scale, seed) pair always produces the identical ABox — benchmarks are
reproducible and the dictionary encoding is stable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dllite.abox import ABox


@dataclass(frozen=True)
class ScaleParameters:
    """Per-scale generator settings (laptop-scale stand-ins, see DESIGN.md)."""

    universities: int
    departments_per_university: int = 6
    label: str = "custom"


#: Paper scale -> laptop scale. LUBM∃ 15M / 100M facts become "small" /
#: "medium"; relative effects (who wins, crossovers) are scale-stable.
SCALES: Dict[str, ScaleParameters] = {
    "tiny": ScaleParameters(universities=1, departments_per_university=2, label="tiny"),
    "small": ScaleParameters(universities=1, departments_per_university=6, label="small"),
    "medium": ScaleParameters(universities=3, departments_per_university=8, label="medium"),
    "large": ScaleParameters(universities=8, departments_per_university=10, label="large"),
}


def scale_parameters(scale: str) -> ScaleParameters:
    """Look up a named scale."""
    try:
        return SCALES[scale]
    except KeyError as missing:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from missing


PROFESSOR_RANKS = ("FullProfessor", "AssociateProfessor", "AssistantProfessor")


def generate_abox(
    scale: str = "small",
    seed: int = 2016,
    type_omission_probability: float = 0.25,
    edge_omission_probability: float = 0.15,
) -> ABox:
    """Generate a deterministic LUBM∃-style ABox at a named scale."""
    params = scale_parameters(scale)
    rng = random.Random(seed)
    abox = ABox()

    def maybe_type(individual: str, concept: str) -> None:
        """Assert a type unless the incompleteness knob drops it."""
        if rng.random() >= type_omission_probability:
            abox.add_concept(concept, individual)

    for u in range(params.universities):
        university = f"Univ{u}"
        abox.add_concept("University", university)
        for d in range(params.departments_per_university):
            dept = f"Dept{u}_{d}"
            abox.add_concept("Department", dept)
            abox.add_role("subOrganizationOf", dept, university)

            # --- faculty ------------------------------------------------
            professors: List[str] = []
            for rank in PROFESSOR_RANKS:
                for i in range(2):
                    person = f"{rank}{u}_{d}_{i}"
                    professors.append(person)
                    # The head's Professor-ness is recoverable via headOf's
                    # domain; others may lose their type too (hierarchy).
                    maybe_type(person, rank)
                    abox.add_role("worksFor", person, dept)
                    abox.add_role(
                        "doctoralDegreeFrom",
                        person,
                        f"Univ{rng.randrange(params.universities)}",
                    )
            head = rng.choice(professors)
            abox.add_role("headOf", head, dept)

            lecturers = []
            for i in range(2):
                person = f"Lecturer{u}_{d}_{i}"
                lecturers.append(person)
                maybe_type(person, "Lecturer")
                abox.add_role("worksFor", person, dept)
            post_doc = f"PostDoc{u}_{d}"
            maybe_type(post_doc, "PostDoc")
            abox.add_role("worksFor", post_doc, dept)

            # --- courses --------------------------------------------------
            courses: List[str] = []
            graduate_courses: List[str] = []
            for i in range(4):
                course = f"GradCourse{u}_{d}_{i}"
                graduate_courses.append(course)
                courses.append(course)
                maybe_type(course, "GraduateCourse")
                abox.add_role("offersCourse", dept, course)
                abox.add_role("teacherOf", rng.choice(professors), course)
            for i in range(6):
                course = f"Course{u}_{d}_{i}"
                courses.append(course)
                maybe_type(course, "UndergraduateCourse")
                abox.add_role("offersCourse", dept, course)
                teacher = rng.choice(professors + lecturers)
                if rng.random() >= edge_omission_probability:
                    abox.add_role("teacherOf", teacher, course)

            # --- students -------------------------------------------------
            for i in range(8):
                student = f"GradStudent{u}_{d}_{i}"
                maybe_type(student, "GraduateStudent")
                abox.add_role("memberOf", student, dept)
                for course in rng.sample(graduate_courses, 2):
                    abox.add_role("takesCourse", student, course)
                if rng.random() >= edge_omission_probability:
                    abox.add_role("advisor", student, rng.choice(professors))
                abox.add_role(
                    "undergraduateDegreeFrom",
                    student,
                    f"Univ{rng.randrange(params.universities)}",
                )
            for i in range(16):
                student = f"UndergradStudent{u}_{d}_{i}"
                maybe_type(student, "UndergraduateStudent")
                # Exercise the member/memberOf inverse: assert from the
                # organization side half of the time.
                if rng.random() < 0.5:
                    abox.add_role("member", dept, student)
                else:
                    abox.add_role("memberOf", student, dept)
                for course in rng.sample(courses, 3):
                    abox.add_role("takesCourse", student, course)
            for i in range(2):
                ta = f"TA{u}_{d}_{i}"
                maybe_type(ta, "TeachingAssistant")
                abox.add_role("teachingAssistantOf", ta, rng.choice(courses))
                abox.add_role("worksFor", ta, dept)

            # --- research -------------------------------------------------
            group = f"Group{u}_{d}"
            maybe_type(group, "ResearchGroup")
            abox.add_role("subOrganizationOf", group, dept)
            project = f"Project{u}_{d}"
            maybe_type(project, "ResearchProject")
            abox.add_role("researchProject", group, project)
            for person in professors[:3]:
                abox.add_role("researchInterest", person, project)

            # --- publications ---------------------------------------------
            for i in range(10):
                paper = f"Paper{u}_{d}_{i}"
                kind = rng.choice(
                    ("JournalArticle", "ConferencePaper", "TechnicalReport")
                )
                maybe_type(paper, kind)
                abox.add_role("orgPublication", dept, paper)
                authors = rng.sample(professors, 2)
                for author in authors:
                    if rng.random() >= edge_omission_probability:
                        abox.add_role("publicationAuthor", paper, author)
                grad_author = f"GradStudent{u}_{d}_{rng.randrange(8)}"
                abox.add_role("publicationAuthor", paper, grad_author)
                abox.add_role("publicationResearch", paper, project)
    return abox
