"""The benchmark workload: queries Q1–Q13 and the star queries A3–A6.

The paper's 13 CQs live in its technical report [8] and are not printed in
the body; these queries are designed against our LUBM∃-style TBox to match
the *reported workload profile* (§6.1):

* 2 to 10 body atoms (ours average 5.0; the paper's 5.77);
* UCQ reformulation sizes spanning one order of magnitude — ours range
  from 50 to 585 CQs (the paper: 35 to 667, average 290.2);
* Q1 is a 6-atom star-join on a common subject, from which the star
  queries A3–A6 are derived by prefix (A6 = Q1, §6.2);
* Q11 is a 2-atom query (like the paper's, whose 2 atoms yield the
  workload's largest reformulation, our 2-atom maximum is Q3).

Exact sizes are pinned by ``tests/test_bench.py`` and reported by
``benchmarks/test_bench_reformulation_stats.py``.
"""

from __future__ import annotations

from typing import Dict

from repro.dllite.parser import parse_query
from repro.queries.cq import CQ

_QUERY_TEXTS: Dict[str, str] = {
    # A graduate-student profile: 6-atom star on x. Atom order matters:
    # A3..A6 take prefixes. GraduateStudent and advisor share dependencies
    # (Grad <= exists advisor) and fuse in the root cover; the remaining
    # four roles are dependency-independent (their domains reach Person,
    # never Student), so each prefix step adds a root fragment and |Lq|
    # grows strictly — the Table 6 shape.
    "Q1": (
        "q(x) <- GraduateStudent(x), advisor(x, a), receivedAward(x, w), "
        "attends(x, e), organizes(x, v), collaboratesWith(x, f)"
    ),
    # Professors working for departments of some organization.
    "Q2": (
        "q(x) <- Professor(x), worksFor(x, y), Department(y), "
        "subOrganizationOf(y, u)"
    ),
    # The workload's largest reformulation from only two atoms:
    # Publication reaches the whole publication hierarchy and
    # publicationAuthor expands through authorOf and the existentials.
    "Q3": "q(x) <- Publication(x), publicationAuthor(x, y)",
    # Professors teaching offered graduate courses. (GraduateCourse and
    # Professor are deliberately not implied by teacherOf's domain/range,
    # so minimization cannot collapse the union.)
    "Q4": (
        "q(x, y) <- Professor(x), teacherOf(x, y), GraduateCourse(y), "
        "offersCourse(d, y)"
    ),
    # Articles by full professors employed by a department.
    "Q5": (
        "q(x) <- Article(x), publicationAuthor(x, y), FullProfessor(y), "
        "worksFor(y, d), Department(d)"
    ),
    # Students advised by a full professor they share an affiliation with.
    "Q6": (
        "q(x, y) <- Student(x), advisor(x, y), FullProfessor(y), "
        "enrolledIn(x, p), worksFor(y, d)"
    ),
    # Departments publishing journal articles about research.
    "Q7": (
        "q(x) <- Department(x), orgPublication(x, p), JournalArticle(p), "
        "publicationResearch(p, r), Research(r), subOrganizationOf(x, u)"
    ),
    # Department staffing chains up to the university.
    "Q8": (
        "q(x, y) <- Department(x), subOrganizationOf(x, u), University(u), "
        "worksFor(y, x), Professor(y), teacherOf(y, c), GraduateCourse(c)"
    ),
    # People working for departments — Person's expansion is the paper's
    # Q9 analogue (three atoms, hundreds of disjuncts).
    "Q9": "q(x) <- Person(x), worksFor(x, o), Department(o)",
    # The 10-atom chain: students, courses, teachers, departments.
    "Q10": (
        "q(s, p) <- GraduateStudent(s), takesCourse(s, c), GraduateCourse(c), "
        "teacherOf(p, c), FullProfessor(p), worksFor(p, d), Department(d), "
        "subOrganizationOf(d, u), University(u), advisor(s, p)"
    ),
    # Two atoms again, medium size (employment expands through headOf).
    "Q11": "q(x, y) <- Employee(x), worksFor(x, y)",
    # Chairs and their departments' universities.
    "Q12": (
        "q(x) <- Chair(x), worksFor(x, y), Department(y), "
        "subOrganizationOf(y, u), University(u)"
    ),
    # Professor/student co-authorship with advisorship.
    "Q13": (
        "q(x, y) <- Article(p), publicationAuthor(p, x), FullProfessor(x), "
        "publicationAuthor(p, y), DoctoralStudent(y), advisor(y, x)"
    ),
}


def benchmark_queries() -> Dict[str, CQ]:
    """Q1–Q13, parsed, keyed by name."""
    return {name: parse_query(text) for name, text in _QUERY_TEXTS.items()}


def query(name: str) -> CQ:
    """One benchmark query by name (e.g. ``"Q9"``)."""
    return parse_query(_QUERY_TEXTS[name])


def star_queries() -> Dict[str, CQ]:
    """A3–A6: star-joins over the first i atoms of Q1 (A6 = Q1), §6.2."""
    q1 = parse_query(_QUERY_TEXTS["Q1"])
    stars: Dict[str, CQ] = {}
    for i in range(3, 7):
        stars[f"A{i}"] = CQ(head=q1.head, atoms=q1.atoms[:i], name=f"A{i}")
    return stars


def workload_profile() -> Dict[str, int]:
    """Atom counts per query (the §6.1 workload statistics)."""
    return {name: len(cq.atoms) for name, cq in benchmark_queries().items()}
