"""Query covers: the paper's optimization space for FOL reformulations.

A *cover* (Definition 1) splits a CQ's atoms into fragments; reformulating
each fragment query independently and joining the results yields a JUCQ (or
JUSCQ) that — for *safe* covers (Definition 5) — is an equivalent FOL
reformulation of the query (Theorem 1). *Generalized* covers (Section 5.2)
additionally replicate atoms across fragments as semijoin reducers while
preserving equivalence (Theorem 3).

Modules:

* :mod:`dependencies` — ``dep(N)`` of Definition 4;
* :mod:`cover` — covers and generalized covers;
* :mod:`fragments` — fragment queries (Definitions 2 and 7);
* :mod:`safety` — safe-cover check and the root cover (Definitions 5, 6);
* :mod:`lattice` — enumeration of the safe-cover lattice Lq (Theorem 2);
* :mod:`generalized` — enumeration of the generalized space Gq;
* :mod:`reformulate` — cover-based reformulation (Definition 3).
"""

from repro.covers.dependencies import dependencies, dependency_closure
from repro.covers.cover import Cover, Fragment, GeneralizedCover, GeneralizedFragment
from repro.covers.fragments import fragment_query, generalized_fragment_query
from repro.covers.safety import is_safe_cover, root_cover
from repro.covers.lattice import enumerate_safe_covers, safe_cover_count
from repro.covers.generalized import enumerate_generalized_covers
from repro.covers.reformulate import (
    cover_based_reformulation,
    cover_based_uscq_reformulation,
)

__all__ = [
    "Cover",
    "Fragment",
    "GeneralizedCover",
    "GeneralizedFragment",
    "cover_based_reformulation",
    "cover_based_uscq_reformulation",
    "dependencies",
    "dependency_closure",
    "enumerate_generalized_covers",
    "enumerate_safe_covers",
    "fragment_query",
    "generalized_fragment_query",
    "is_safe_cover",
    "root_cover",
    "safe_cover_count",
]
