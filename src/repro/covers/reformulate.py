"""Cover-based reformulation (Definition 3): fragments to JUCQ / JUSCQ.

Given a (generalized) cover, each fragment query is reformulated with the
CQ-to-UCQ technique (PerfectRef) — or CQ-to-USCQ — and the reformulated
fragments are joined on their shared head variables. For covers in the safe
space Lq or the generalized space Gq the result is an equivalent FOL
reformulation of the input query (Theorems 1 and 3).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.covers.cover import Cover, GeneralizedCover
from repro.covers.fragments import fragment_query, generalized_fragment_query
from repro.dllite.tbox import TBox
from repro.queries.cq import CQ
from repro.queries.jucq import JUCQ, JUSCQ
from repro.queries.scq import USCQ
from repro.queries.ucq import UCQ
from repro.reformulation.perfectref import reformulate_to_ucq
from repro.reformulation.uscq import factorize_ucq

AnyCover = Union[Cover, GeneralizedCover]


def fragment_queries_of(cover: AnyCover) -> List[CQ]:
    """The (generalized) fragment queries of a cover, in fragment order."""
    queries: List[CQ] = []
    if isinstance(cover, GeneralizedCover):
        for position, gf in enumerate(cover.fragments):
            queries.append(
                generalized_fragment_query(
                    cover.query, gf, cover, name=f"{cover.query.name}_f{position}"
                )
            )
    else:
        for position, fragment in enumerate(cover.fragments):
            queries.append(
                fragment_query(
                    cover.query, fragment, cover, name=f"{cover.query.name}_f{position}"
                )
            )
    return queries


def cover_based_reformulation(
    cover: AnyCover,
    tbox: TBox,
    minimize: bool = True,
    cache: Optional[dict] = None,
) -> JUCQ:
    """The JUCQ reformulation of the cover's query (Definition 3).

    Every fragment query is reformulated to a (optionally minimized) UCQ;
    the JUCQ joins them on shared head variable names and projects the
    original head. For a one-fragment cover this degenerates to the plain
    UCQ reformulation wrapped as a single-component JUCQ.

    ``cache`` (structural fragment-query key -> UCQ) lets a search
    algorithm exploring many covers reformulate each distinct fragment
    once — cover search revisits the same fragments constantly.
    """
    query = cover.query
    components: List[UCQ] = []
    for fq in fragment_queries_of(cover):
        key = (fq.head, fq.atoms, minimize)
        component = cache.get(key) if cache is not None else None
        if component is None:
            component = reformulate_to_ucq(fq, tbox, minimize=minimize)
            if cache is not None:
                cache[key] = component
        components.append(component)
    return JUCQ(
        head=query.head,
        components=tuple(components),
        name=f"{query.name}_jucq",
    )


def cover_based_uscq_reformulation(
    cover: AnyCover,
    tbox: TBox,
    minimize: bool = True,
    cache: Optional[dict] = None,
) -> JUSCQ:
    """The JUSCQ reformulation: fragments reformulated to USCQs instead.

    ``cache`` works as in :func:`cover_based_reformulation`, but keys carry
    a trailing ``"uscq"`` marker so the two dialects never collide when
    sharing one cache (a cached UCQ must never surface where a USCQ is
    expected, and vice versa).
    """
    query = cover.query
    components: List[USCQ] = []
    for fq in fragment_queries_of(cover):
        key = (fq.head, fq.atoms, minimize, "uscq")
        component = cache.get(key) if cache is not None else None
        if component is None:
            ucq = reformulate_to_ucq(fq, tbox, minimize=minimize)
            component = factorize_ucq(ucq, name=f"{fq.name}_uscq")
            if cache is not None:
                cache[key] = component
        components.append(component)
    return JUSCQ(
        head=query.head,
        components=tuple(components),
        name=f"{query.name}_juscq",
    )
