"""The safe-cover lattice Lq (Theorem 2).

Every fragment of a safe cover is a union of root-cover fragments, so the
safe covers of a query are exactly the set partitions of the root cover's
fragments — ordered by "each fragment of C2 is a union of fragments of C1",
with the root cover as top and the single-fragment cover as bottom. The
lattice size is bounded by the Bell number of the root fragment count.

An optional connectivity filter additionally enforces condition (iii) of
Definition 1 on merged fragments (each merged fragment must be
join-connected, treating forced root fragments as already grouped).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Sequence, Set, Tuple

from repro.covers.cover import Cover, Fragment, _indices_connected
from repro.covers.safety import root_cover
from repro.dllite.tbox import TBox
from repro.queries.cq import CQ


def _set_partitions(items: Sequence[Fragment]) -> Iterator[List[List[Fragment]]]:
    """All set partitions of *items* (standard recursive enumeration)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        # Put `first` in each existing block...
        for index in range(len(partition)):
            yield (
                partition[:index]
                + [[first] + partition[index]]
                + partition[index + 1 :]
            )
        # ... or in a new block of its own.
        yield [[first]] + partition


def enumerate_safe_covers(
    query: CQ,
    tbox: TBox,
    require_connected: bool = False,
) -> Iterator[Cover]:
    """Yield every safe cover of *query* w.r.t. *tbox*.

    With ``require_connected``, merged fragments must be join-connected
    (single root fragments are always admitted, being forced by safety).
    """
    base = root_cover(query, tbox)
    for partition in _set_partitions(base.fragments):
        fragments = []
        admissible = True
        for block in partition:
            merged: Fragment = frozenset().union(*block)
            if (
                require_connected
                and len(block) > 1
                and not _indices_connected(query, merged)
            ):
                admissible = False
                break
            fragments.append(merged)
        if admissible:
            yield Cover(query, tuple(fragments))


def safe_cover_count(
    query: CQ, tbox: TBox, require_connected: bool = False
) -> int:
    """``|Lq|`` — the number of safe covers (Table 6's first row)."""
    return sum(1 for _ in enumerate_safe_covers(query, tbox, require_connected))


@lru_cache(maxsize=None)
def bell_number(n: int) -> int:
    """The n-th Bell number: the paper's upper bound for ``|Lq|``."""
    # Bell triangle construction: row 0 is [1]; each next row starts with
    # the previous row's last element and accumulates; B_n is the first
    # element of row n.
    row = [1]
    for _ in range(n):
        next_row = [row[-1]]
        for value in row:
            next_row.append(next_row[-1] + value)
        row = next_row
    return row[0]
