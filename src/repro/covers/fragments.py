"""Fragment queries of a CQ w.r.t. a cover (Definitions 2 and 7).

The fragment query of ``f`` exports (i) the free variables of the full
query appearing in ``f`` and (ii) the existential variables of ``f`` shared
with *another* fragment — the variables the cross-fragment joins need.

For a generalized fragment ``f || g``, the body contains all atoms of
``f`` but the exported variables are computed from ``g`` alone (reducer
atoms filter, they never widen the head).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.covers.cover import Cover, Fragment, GeneralizedCover, GeneralizedFragment
from repro.queries.atoms import Atom
from repro.queries.cq import CQ
from repro.queries.terms import Term, Variable, is_variable


def _variables_of_atoms(atoms: Sequence[Atom]) -> Set[Variable]:
    return {v for atom in atoms for v in atom.variables()}


def _ordered_head(
    query: CQ, exported: Set[Variable]
) -> Tuple[Variable, ...]:
    """Deterministic head ordering: query-head order, then body order."""
    ordered: List[Variable] = []
    seen: Set[Variable] = set()
    for term in query.head:
        if is_variable(term) and term in exported and term not in seen:
            ordered.append(term)
            seen.add(term)
    for atom in query.atoms:
        for variable in atom.variables():
            if variable in exported and variable not in seen:
                ordered.append(variable)
                seen.add(variable)
    return tuple(ordered)


def fragment_query(query: CQ, fragment: Fragment, cover: Cover, name: str = "") -> CQ:
    """The fragment query ``q|f`` of Definition 2."""
    atoms = cover.atoms_of(fragment)
    own_variables = _variables_of_atoms(atoms)
    other_variables: Set[Variable] = set()
    for other in cover.fragments:
        if other == fragment:
            continue
        other_variables |= _variables_of_atoms(cover.atoms_of(other))

    head_variables = query.head_variables() & own_variables
    shared_existentials = (own_variables - query.head_variables()) & other_variables
    exported = head_variables | shared_existentials
    head = _ordered_head(query, exported)
    return CQ(head=head, atoms=atoms, name=name or f"{query.name}_f")


def generalized_fragment_query(
    query: CQ,
    fragment: GeneralizedFragment,
    cover: GeneralizedCover,
    name: str = "",
) -> CQ:
    """The generalized fragment query ``q|f||g`` of Definition 7.

    The body is ``f``; exported variables are the query's free variables in
    the atoms of ``g``, plus variables of ``g``'s atoms shared with the
    ``g'`` part of some *other* generalized fragment.
    """
    body_atoms = tuple(query.atoms[i] for i in sorted(fragment.f))
    g_atoms = tuple(query.atoms[i] for i in sorted(fragment.g))
    g_variables = _variables_of_atoms(g_atoms)

    other_g_variables: Set[Variable] = set()
    for other in cover.fragments:
        if other == fragment:
            continue
        other_atoms = tuple(query.atoms[i] for i in sorted(other.g))
        other_g_variables |= _variables_of_atoms(other_atoms)

    head_variables = query.head_variables() & g_variables
    shared = (g_variables - query.head_variables()) & other_g_variables
    exported = head_variables | shared
    head = _ordered_head(query, exported)
    return CQ(head=head, atoms=body_atoms, name=name or f"{query.name}_fg")
