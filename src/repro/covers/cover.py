"""Covers and generalized covers of a conjunctive query (Definition 1, §5.2).

Fragments are represented as frozensets of *atom indices* into the query's
body: index-based fragments stay well-defined even for bodies with repeated
atoms, deduplicate structurally, and give deterministic orderings (fragments
are normalized sorted by their smallest atom index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.queries.atoms import Atom
from repro.queries.cq import CQ

Fragment = FrozenSet[int]


def _normalize_fragments(fragments: Iterable[Iterable[int]]) -> Tuple[Fragment, ...]:
    unique: Set[Fragment] = {frozenset(f) for f in fragments}
    return tuple(sorted(unique, key=lambda f: (min(f), sorted(f))))


def _check_cover_conditions(query: CQ, fragments: Sequence[Fragment]) -> None:
    if not fragments:
        raise ValueError("a cover must have at least one fragment")
    all_indices = set(range(len(query.atoms)))
    covered: Set[int] = set()
    for fragment in fragments:
        if not fragment:
            raise ValueError("cover fragments must be non-empty")
        if not fragment <= all_indices:
            raise ValueError(f"fragment {sorted(fragment)} has out-of-range atoms")
        covered |= fragment
    if covered != all_indices:
        missing = sorted(all_indices - covered)
        raise ValueError(f"cover misses atoms at positions {missing}")
    for i, first in enumerate(fragments):
        for j, second in enumerate(fragments):
            if i != j and first <= second:
                raise ValueError(
                    f"fragment {sorted(first)} is included in {sorted(second)}"
                )


@dataclass(frozen=True)
class Cover:
    """A cover of ``query``: fragments jointly covering all body atoms.

    Conditions (i)-(ii) of Definition 1 (coverage, no inclusion) are
    enforced; condition (iii) (join-connectivity of each fragment) is
    exposed as :meth:`is_connected` because the *root cover* construction of
    Definition 6 can produce dependency-merged fragments that are not
    join-connected, which the framework still handles correctly.
    """

    query: CQ
    fragments: Tuple[Fragment, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fragments", _normalize_fragments(self.fragments)
        )
        _check_cover_conditions(self.query, self.fragments)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.fragments)

    def atoms_of(self, fragment: Fragment) -> Tuple[Atom, ...]:
        """The atoms of a fragment, in query-body order."""
        return tuple(self.query.atoms[i] for i in sorted(fragment))

    def is_partition(self) -> bool:
        """True when fragments are pairwise disjoint (Definition 5 requires it)."""
        seen: Set[int] = set()
        for fragment in self.fragments:
            if fragment & seen:
                return False
            seen |= fragment
        return True

    def is_connected(self) -> bool:
        """True when every fragment is join-connected within the query."""
        return all(
            _indices_connected(self.query, fragment) for fragment in self.fragments
        )

    def union_fragments(self, first: Fragment, second: Fragment) -> "Cover":
        """The cover obtained by replacing two fragments with their union."""
        if first not in self.fragments or second not in self.fragments:
            raise ValueError("both fragments must belong to this cover")
        if first == second:
            raise ValueError("cannot union a fragment with itself")
        remaining = [f for f in self.fragments if f not in (first, second)]
        return Cover(self.query, tuple(remaining) + (first | second,))

    def key(self) -> Tuple[Tuple[int, ...], ...]:
        """A hashable normal form (used to deduplicate search states)."""
        return tuple(tuple(sorted(f)) for f in self.fragments)

    def __str__(self) -> str:
        rendered = []
        for fragment in self.fragments:
            atoms = ", ".join(str(a) for a in self.atoms_of(fragment))
            rendered.append("{" + atoms + "}")
        return "{" + "; ".join(rendered) + "}"


@dataclass(frozen=True)
class GeneralizedFragment:
    """A pair ``f || g`` of atom-index sets with ``g <= f`` (Section 5.2).

    ``g`` determines the exported variables (like a plain fragment); the
    extra atoms ``f - g`` act as semijoin reducers, filtering the fragment's
    answers without extending its head.
    """

    f: Fragment
    g: Fragment

    def __post_init__(self) -> None:
        object.__setattr__(self, "f", frozenset(self.f))
        object.__setattr__(self, "g", frozenset(self.g))
        if not self.g:
            raise ValueError("the g-part of a generalized fragment is non-empty")
        if not self.g <= self.f:
            raise ValueError("g must be a subset of f in a generalized fragment")

    @property
    def reducers(self) -> Fragment:
        """The semijoin-reducer atoms ``f - g``."""
        return self.f - self.g

    def key(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        return (tuple(sorted(self.f)), tuple(sorted(self.g)))

    def __str__(self) -> str:
        return f"{sorted(self.f)}||{sorted(self.g)}"


@dataclass(frozen=True)
class GeneralizedCover:
    """A set of generalized fragments whose ``f`` parts cover the query.

    Membership in the space Gq additionally requires the ``g`` parts to
    form a *safe* cover and each ``f`` part to be join-connected — checked
    by :func:`repro.covers.generalized.in_generalized_space` since it needs
    the TBox.
    """

    query: CQ
    fragments: Tuple[GeneralizedFragment, ...]

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(set(self.fragments), key=lambda gf: gf.key())
        )
        object.__setattr__(self, "fragments", ordered)
        if not self.fragments:
            raise ValueError("a generalized cover must have fragments")
        all_indices = set(range(len(self.query.atoms)))
        covered: Set[int] = set()
        for gf in self.fragments:
            if not gf.f <= all_indices:
                raise ValueError("generalized fragment has out-of-range atoms")
            covered |= gf.f
        if covered != all_indices:
            raise ValueError("generalized cover must cover all atoms")
        for i, first in enumerate(self.fragments):
            for j, second in enumerate(self.fragments):
                if i != j and first.f <= second.f:
                    raise ValueError(
                        f"fragment {first} is included in {second}"
                    )

    def __len__(self) -> int:
        return len(self.fragments)

    def g_cover(self) -> Cover:
        """The plain cover formed by the ``g`` parts."""
        return Cover(self.query, tuple(gf.g for gf in self.fragments))

    def is_plain(self) -> bool:
        """True when no fragment carries reducer atoms (f == g everywhere)."""
        return all(not gf.reducers for gf in self.fragments)

    def key(self) -> Tuple:
        return tuple(gf.key() for gf in self.fragments)

    def enlarge(self, fragment: GeneralizedFragment, atom_index: int) -> "GeneralizedCover":
        """Add one reducer atom to a fragment (a GDL *enlarge* move)."""
        if fragment not in self.fragments:
            raise ValueError("fragment does not belong to this cover")
        if atom_index in fragment.f:
            raise ValueError("atom already belongs to the fragment")
        replaced = GeneralizedFragment(fragment.f | {atom_index}, fragment.g)
        remaining = [gf for gf in self.fragments if gf != fragment]
        return GeneralizedCover(self.query, tuple(remaining) + (replaced,))

    @classmethod
    def from_cover(cls, cover: Cover) -> "GeneralizedCover":
        """Lift a plain cover (every fragment becomes ``f || f``)."""
        fragments = tuple(
            GeneralizedFragment(f, f) for f in cover.fragments
        )
        return cls(cover.query, fragments)

    def __str__(self) -> str:
        return "{" + "; ".join(str(gf) for gf in self.fragments) + "}"


def _indices_connected(query: CQ, indices: Fragment) -> bool:
    """Whether the atoms at *indices* form one join-connected component."""
    indices = frozenset(indices)
    if len(indices) <= 1:
        return True
    variable_map = query.atoms_sharing_variable()
    adjacency = {i: set() for i in indices}
    for positions in variable_map.values():
        members = [p for p in positions if p in indices]
        for i in members:
            for j in members:
                if i != j:
                    adjacency[i].add(j)
    start = next(iter(indices))
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen == indices
