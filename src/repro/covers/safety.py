"""Safe covers and the root cover (Definitions 5 and 6).

A cover is *safe* when it is a partition of the query atoms and any two
atoms whose predicates depend on a common concept or role name (w.r.t. the
TBox) are in the same fragment — the sufficient condition under which
fragment-wise reformulation misses no unification (Theorem 1).

The *root cover* is the finest safe cover: atoms sharing a dependency are
merged transitively, everything else stays separate (Lemma 1/Proposition 1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.covers.cover import Cover, Fragment
from repro.covers.dependencies import dependency_closure
from repro.dllite.tbox import TBox
from repro.queries.cq import CQ


def _dependency_adjacency(query: CQ, tbox: TBox) -> Dict[int, Set[int]]:
    """Edges between atom indices whose predicates share a dependency."""
    closure = dependency_closure(tbox)
    deps: List[FrozenSet[str]] = [
        closure.get(atom.predicate, frozenset({atom.predicate}))
        for atom in query.atoms
    ]
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(query.atoms))}
    for i in range(len(query.atoms)):
        for j in range(i + 1, len(query.atoms)):
            if deps[i] & deps[j]:
                adjacency[i].add(j)
                adjacency[j].add(i)
    return adjacency


def root_cover(query: CQ, tbox: TBox) -> Cover:
    """The root cover ``Croot`` of Definition 6.

    Built as the connected components of the dependency adjacency between
    atoms — equivalent to the paper's inflationary pairwise-union
    construction, and independent of fragment consideration order.
    """
    adjacency = _dependency_adjacency(query, tbox)
    seen: Set[int] = set()
    fragments: List[Fragment] = []
    for start in range(len(query.atoms)):
        if start in seen:
            continue
        component: Set[int] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(adjacency[node] - component)
        seen |= component
        fragments.append(frozenset(component))
    return Cover(query, tuple(fragments))


def is_safe_cover(cover: Cover, tbox: TBox) -> bool:
    """Definition 5: partition + dependency-sharing atoms co-located."""
    if not cover.is_partition():
        return False
    fragment_of: Dict[int, int] = {}
    for position, fragment in enumerate(cover.fragments):
        for index in fragment:
            fragment_of[index] = position
    adjacency = _dependency_adjacency(cover.query, tbox)
    for i, neighbors in adjacency.items():
        for j in neighbors:
            if fragment_of[i] != fragment_of[j]:
                return False
    return True


def single_fragment_cover(query: CQ) -> Cover:
    """The trivial one-fragment cover — always safe (lattice lower bound)."""
    return Cover(query, (frozenset(range(len(query.atoms))),))
