"""Concept and role dependencies w.r.t. a TBox (Definition 4).

``dep(N)`` is the set of concept and role *names* into which ``N`` may turn
through some sequence of atom specializations performed by the CQ-to-UCQ
algorithm (backward constraint applications and unifications). It is the
fixpoint of::

    dep0(N) = {N}
    depn(N) = depn-1(N) ∪ {cr(Y) | Y <= X in T and cr(X) in depn-1(N)}

where ``cr`` strips inverses and existentials down to the bare name
(:func:`repro.dllite.vocabulary.predicate_name`).

Two query atoms whose predicates have intersecting dependency sets may be
brought to unify during reformulation — the safety condition (Definition 5)
requires such atoms to live in the same cover fragment.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import predicate_name


def dependencies(name: str, tbox: TBox) -> FrozenSet[str]:
    """``dep(name)``: all names *name* depends on w.r.t. *tbox*."""
    return dependency_closure(tbox).get(name, frozenset({name}))


def dependency_closure(tbox: TBox) -> Dict[str, FrozenSet[str]]:
    """``dep(N)`` for every predicate name of the TBox signature.

    The closure is computed once for all names by propagating over the
    positive axioms until fixpoint; names outside the TBox signature
    trivially depend only on themselves.
    """
    edges: Dict[str, Set[str]] = {}
    for axiom in tbox.positive_axioms():
        rhs_name = predicate_name(axiom.rhs)
        lhs_name = predicate_name(axiom.lhs)
        edges.setdefault(rhs_name, set()).add(lhs_name)

    closure: Dict[str, Set[str]] = {
        name: {name} for name in tbox.predicate_names()
    }
    changed = True
    while changed:
        changed = False
        for name, deps in closure.items():
            additions: Set[str] = set()
            for dep in deps:
                additions |= edges.get(dep, set())
            new = additions - deps
            if new:
                deps |= new
                changed = True
    return {name: frozenset(deps) for name, deps in closure.items()}


def share_dependency(first: str, second: str, tbox: TBox) -> bool:
    """True iff ``dep(first)`` and ``dep(second)`` intersect."""
    return bool(dependencies(first, tbox) & dependencies(second, tbox))
