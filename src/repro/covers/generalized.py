"""The generalized-cover space Gq (Section 5.2).

A generalized cover ``{f1||g1, ..., fm||gm}`` belongs to Gq iff the g-parts
form a safe cover and every f-part is join-connected. The space blows up
quickly (upper bound ``Bn * n * 2^(n-1)``), which is exactly why the paper's
exhaustive EDL is impractical and GDL explores greedily; the enumerator
below therefore takes a hard ``limit``, mirroring the paper's own cut-off
at 20,003 covers for query A6 (Table 6).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.covers.cover import (
    Cover,
    Fragment,
    GeneralizedCover,
    GeneralizedFragment,
    _indices_connected,
)
from repro.covers.lattice import enumerate_safe_covers
from repro.covers.safety import is_safe_cover
from repro.dllite.tbox import TBox
from repro.queries.cq import CQ


def _connected_extensions(
    query: CQ, base: Fragment, limit_atoms: Sequence[int]
) -> Iterator[Fragment]:
    """All supersets of *base* (within the query) that are join-connected.

    Enumerated by growing with join-adjacent atoms only, so every yielded
    set is connected whenever *base* is.
    """
    variable_map = query.atoms_sharing_variable()
    adjacency = {i: set() for i in range(len(query.atoms))}
    for positions in variable_map.values():
        for i in positions:
            for j in positions:
                if i != j:
                    adjacency[i].add(j)

    seen: Set[Fragment] = set()

    def grow(current: Fragment) -> Iterator[Fragment]:
        if current in seen:
            return
        seen.add(current)
        yield current
        frontier = set()
        for index in current:
            frontier |= adjacency[index]
        for candidate in sorted(frontier - current):
            yield from grow(current | {candidate})

    yield from grow(frozenset(base))


def in_generalized_space(cover: GeneralizedCover, tbox: TBox) -> bool:
    """Membership test for Gq: safe g-cover + connected f-parts."""
    if not is_safe_cover(cover.g_cover(), tbox):
        return False
    return all(
        _indices_connected(cover.query, gf.f) for gf in cover.fragments
    )


def enumerate_generalized_covers(
    query: CQ,
    tbox: TBox,
    limit: Optional[int] = None,
    require_connected_safe_covers: bool = False,
) -> Iterator[GeneralizedCover]:
    """Yield the covers of Gq, up to *limit* (Table 6 caps A6 at 20,003).

    Enumeration order: for each safe cover (coarsest first is not required;
    the lattice enumerator's order is used), each fragment may be extended
    by any connected superset, subject to the no-inclusion condition of
    Definition 1.
    """
    produced = 0
    seen: Set[Tuple] = set()
    for safe in enumerate_safe_covers(
        query, tbox, require_connected=require_connected_safe_covers
    ):
        extension_choices: List[List[Fragment]] = []
        for g in safe.fragments:
            extension_choices.append(list(_connected_extensions(query, g, [])))

        def combine(position: int, chosen: List[Fragment]) -> Iterator[GeneralizedCover]:
            if position == len(safe.fragments):
                try:
                    candidate = GeneralizedCover(
                        query,
                        tuple(
                            GeneralizedFragment(f, g)
                            for f, g in zip(chosen, safe.fragments)
                        ),
                    )
                except ValueError:
                    return
                key = candidate.key()
                if key not in seen:
                    seen.add(key)
                    yield candidate
                return
            for extension in extension_choices[position]:
                yield from combine(position + 1, chosen + [extension])

        for cover in combine(0, []):
            yield cover
            produced += 1
            if limit is not None and produced >= limit:
                return


def generalized_space_upper_bound(atom_count: int) -> int:
    """The paper's bound ``Bn * n * 2^(n-1)`` on ``|Gq|``."""
    from repro.covers.lattice import bell_number

    return bell_number(atom_count) * atom_count * 2 ** max(atom_count - 1, 0)
